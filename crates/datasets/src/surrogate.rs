//! Surrogates for the LIBSVM evaluation datasets of Table 3.
//!
//! The paper's "rigorous evaluation" (Section 8.3) uses five LIBSVM
//! datasets — gisette, epsilon, cifar10, rcv1 and sector — restricted to
//! 1000 randomly selected features so the exact correlation matrix can be
//! computed. The datasets themselves cannot ship with this repository, so
//! each is replaced by a generator that reproduces the properties the
//! sketching algorithms are sensitive to:
//!
//! * the dimensionality and sample count of Table 3,
//! * the per-sample density (gisette/epsilon/cifar10 are dense, rcv1 and
//!   sector are very sparse),
//! * a planted sparse block-correlation structure whose signal proportion
//!   matches the `α` column of Table 3, and
//! * heavy-tailed feature scales (so the correlation normalisation path is
//!   exercised, not just the covariance path).
//!
//! The surrogate keeps exact ground truth (block membership and planted
//! correlation), which the real datasets cannot provide — the evaluation
//! layer uses the *empirical* correlation matrix as ground truth, exactly
//! as the paper does, so this extra information is only used for sanity
//! checks.

use crate::simulation::{SimulatedDataset, SimulationSpec};
use ascs_core::Sample;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Shape parameters of a surrogate dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurrogateSpec {
    /// Dataset name (matches the paper's naming).
    pub name: String,
    /// Number of features used for evaluation (the paper subsamples to
    /// 1000).
    pub dim: u64,
    /// Number of samples in the stream.
    pub samples: u64,
    /// Expected fraction of non-zero features per sample (1.0 = dense).
    pub density: f64,
    /// Signal proportion `α` used for this dataset in Table 3.
    pub alpha: f64,
    /// Block size of the planted correlation structure.
    pub block_size: u64,
    /// Range of planted within-block correlations.
    pub rho_range: (f64, f64),
    /// Scale heterogeneity: feature scales are drawn log-uniformly from
    /// `[1, scale_spread]`.
    pub scale_spread: f64,
    /// Seed.
    pub seed: u64,
}

impl SurrogateSpec {
    /// gisette surrogate: 5000-dim dense data, 6000 samples, `α = 2 %`
    /// (evaluated on 1000 features as in the paper).
    pub fn gisette() -> Self {
        Self {
            name: "gisette".into(),
            dim: 1000,
            samples: 6000,
            density: 0.87,
            alpha: 0.02,
            block_size: 8,
            rho_range: (0.55, 0.95),
            scale_spread: 8.0,
            seed: 0x6153,
        }
    }

    /// epsilon surrogate: dense 2000-dim data, `α = 10 %` (Table 3 uses
    /// 400k samples; the surrogate defaults to 20k and the harness can
    /// scale up).
    pub fn epsilon() -> Self {
        Self {
            name: "epsilon".into(),
            dim: 1000,
            samples: 20_000,
            density: 1.0,
            alpha: 0.10,
            block_size: 12,
            rho_range: (0.35, 0.85),
            scale_spread: 2.0,
            seed: 0xE951,
        }
    }

    /// cifar10 surrogate: dense pixel-like data, `α = 10 %`.
    pub fn cifar10() -> Self {
        Self {
            name: "cifar10".into(),
            dim: 1000,
            samples: 10_000,
            density: 0.98,
            alpha: 0.10,
            block_size: 12,
            rho_range: (0.4, 0.9),
            scale_spread: 3.0,
            seed: 0xC1FA,
        }
    }

    /// rcv1 surrogate: very sparse text features, `α = 0.5 %`.
    pub fn rcv1() -> Self {
        Self {
            name: "rcv1".into(),
            dim: 1000,
            samples: 20_000,
            density: 0.04,
            alpha: 0.005,
            block_size: 5,
            rho_range: (0.5, 0.95),
            scale_spread: 20.0,
            seed: 0x2C71,
        }
    }

    /// sector surrogate: sparse text features, `α = 0.5 %`.
    pub fn sector() -> Self {
        Self {
            name: "sector".into(),
            dim: 1000,
            samples: 6_412,
            density: 0.03,
            alpha: 0.005,
            block_size: 5,
            rho_range: (0.5, 0.95),
            scale_spread: 20.0,
            seed: 0x5EC7,
        }
    }

    /// All five Table 3 surrogates.
    pub fn all_paper_datasets() -> Vec<Self> {
        vec![
            Self::gisette(),
            Self::epsilon(),
            Self::cifar10(),
            Self::rcv1(),
            Self::sector(),
        ]
    }

    /// Shrinks the spec for smoke tests (fewer samples, smaller dim) while
    /// keeping the density and correlation structure.
    pub fn scaled(mut self, dim: u64, samples: u64) -> Self {
        self.dim = dim;
        self.samples = samples;
        self
    }
}

/// A realised surrogate dataset.
#[derive(Debug, Clone)]
pub struct SurrogateDataset {
    spec: SurrogateSpec,
    /// The latent correlated core that drives signal pairs.
    core: SimulatedDataset,
    /// Per-feature positive scales (heavy-tailed).
    scales: Vec<f64>,
}

impl SurrogateDataset {
    /// Builds the surrogate from its spec.
    pub fn new(spec: SurrogateSpec) -> Self {
        assert!(spec.dim >= 4, "surrogate needs at least 4 features");
        assert!(spec.samples > 0, "surrogate needs samples");
        assert!(
            spec.density > 0.0 && spec.density <= 1.0,
            "density must be in (0, 1]"
        );
        let sim_spec = SimulationSpec {
            dim: spec.dim,
            alpha: spec.alpha,
            rho_min: spec.rho_range.0,
            rho_max: spec.rho_range.1,
            block_size: spec.block_size.max(2).min(spec.dim),
            seed: spec.seed,
        };
        let core = SimulatedDataset::new(sim_spec);
        let mut rng = ChaCha8Rng::seed_from_u64(spec.seed ^ 0x5CA1E);
        let scales: Vec<f64> = (0..spec.dim)
            .map(|_| {
                let log_spread = spec.scale_spread.max(1.0).ln();
                (rng.gen::<f64>() * log_spread).exp()
            })
            .collect();
        Self { spec, core, scales }
    }

    /// The spec.
    pub fn spec(&self) -> &SurrogateSpec {
        &self.spec
    }

    /// The planted signal pairs (feature indices + latent correlation).
    pub fn signal_pairs(&self) -> Vec<(u64, u64, f64)> {
        self.core.signal_pairs()
    }

    /// Linear keys of the planted signal pairs.
    pub fn signal_keys(&self) -> Vec<u64> {
        self.core.signal_keys()
    }

    /// Number of samples the stream will produce.
    pub fn len(&self) -> u64 {
        self.spec.samples
    }

    /// Whether the stream is empty (never true for a valid spec).
    pub fn is_empty(&self) -> bool {
        self.spec.samples == 0
    }

    /// Generates the `index`-th sample.
    ///
    /// The sample is the latent correlated Gaussian vector, scaled
    /// per-feature, sparsified to the target density (dropped features read
    /// exactly 0.0 — the hallmark of sparse text / k-mer data). Dropout is
    /// *block-coherent*: features of the same planted block appear together
    /// or not at all (like words of the same topic in a document), while
    /// background features are dropped independently. Coherent dropout keeps
    /// the planted correlations observable at realistic densities — with
    /// independent dropout a 3 % dense dataset would co-observe a pair only
    /// once per thousand samples and no algorithm could recover it.
    pub fn sample_at(&self, index: u64) -> Sample {
        let latent = self.core.sample_at(index);
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.spec.seed ^ 0xD0D0_0000 ^ index.wrapping_mul(0x517C_C1B7_2722_0A95),
        );
        if self.spec.density >= 1.0 {
            let values: Vec<f64> = (0..self.spec.dim as usize)
                .map(|i| latent.value(i as u64) * self.scales[i])
                .collect();
            return Sample::dense(values);
        }
        // One activation coin per block, drawn up front so every feature of
        // the block sees the same decision.
        let block_active: Vec<bool> = (0..self.core.num_blocks())
            .map(|_| rng.gen::<f64>() < self.spec.density)
            .collect();
        let mut entries = Vec::new();
        for i in 0..self.spec.dim as usize {
            let keep = match self.core.block_of(i as u64) {
                Some(block) => block_active[block as usize],
                None => rng.gen::<f64>() < self.spec.density,
            };
            if keep {
                let v = latent.value(i as u64) * self.scales[i];
                if v != 0.0 {
                    entries.push((i as u32, v));
                }
            }
        }
        Sample::sparse(self.spec.dim, entries)
    }

    /// Generates the first `n` samples (or all of them if `n` exceeds the
    /// spec).
    pub fn samples(&self, n: usize) -> Vec<Sample> {
        let n = n.min(self.spec.samples as usize);
        (0..n as u64).map(|i| self.sample_at(i)).collect()
    }

    /// Full stream as specified by the spec.
    pub fn all_samples(&self) -> Vec<Sample> {
        self.samples(self.spec.samples as usize)
    }

    /// Average number of non-zero features per sample, estimated from the
    /// first `probe` samples.
    pub fn average_nonzeros(&self, probe: usize) -> f64 {
        let probe = probe.max(1).min(self.spec.samples as usize);
        let total: usize = (0..probe as u64)
            .map(|i| self.sample_at(i).nonzero_count())
            .sum();
        total as f64 / probe as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ascs_numerics::RunningCovariance;

    #[test]
    fn paper_specs_have_table3_alphas() {
        let specs = SurrogateSpec::all_paper_datasets();
        assert_eq!(specs.len(), 5);
        let alpha_of = |name: &str| {
            specs
                .iter()
                .find(|s| s.name == name)
                .map(|s| s.alpha)
                .unwrap()
        };
        assert_eq!(alpha_of("gisette"), 0.02);
        assert_eq!(alpha_of("epsilon"), 0.10);
        assert_eq!(alpha_of("cifar10"), 0.10);
        assert_eq!(alpha_of("rcv1"), 0.005);
        assert_eq!(alpha_of("sector"), 0.005);
    }

    #[test]
    fn density_controls_sparsity() {
        let dense = SurrogateDataset::new(SurrogateSpec::gisette().scaled(100, 100));
        let sparse = SurrogateDataset::new(SurrogateSpec::rcv1().scaled(100, 100));
        let dense_nnz = dense.average_nonzeros(50);
        let sparse_nnz = sparse.average_nonzeros(50);
        assert!(dense_nnz > 70.0, "dense surrogate too sparse: {dense_nnz}");
        assert!(
            sparse_nnz < 15.0,
            "sparse surrogate too dense: {sparse_nnz}"
        );
    }

    #[test]
    fn samples_are_deterministic() {
        let ds = SurrogateDataset::new(SurrogateSpec::sector().scaled(50, 20));
        assert_eq!(ds.sample_at(3), ds.sample_at(3));
        assert_ne!(ds.sample_at(3), ds.sample_at(4));
    }

    #[test]
    fn planted_pairs_survive_scaling_and_dropout() {
        // Correlation is scale-invariant, and independent dropout attenuates
        // but does not destroy it; the planted pair must remain clearly
        // separated from a null pair.
        let spec = SurrogateSpec {
            name: "test".into(),
            dim: 30,
            samples: 5000,
            density: 0.8,
            alpha: 0.05,
            block_size: 3,
            rho_range: (0.9, 0.9),
            scale_spread: 10.0,
            seed: 9,
        };
        let ds = SurrogateDataset::new(spec);
        let pairs = ds.signal_pairs();
        assert!(!pairs.is_empty());
        let (a, b, _) = pairs[0];
        let noise = (0..30u64)
            .find(|&f| f != a && ds.core.true_correlation(a, f) == 0.0)
            .unwrap();
        let mut planted = RunningCovariance::new();
        let mut cross = RunningCovariance::new();
        for i in 0..5000u64 {
            let s = ds.sample_at(i);
            planted.push(s.value(a), s.value(b));
            cross.push(s.value(a), s.value(noise));
        }
        assert!(
            planted.correlation() > 0.5,
            "planted correlation attenuated to {}",
            planted.correlation()
        );
        assert!(cross.correlation().abs() < 0.1);
        assert!(planted.correlation() > cross.correlation().abs() + 0.4);
    }

    #[test]
    fn all_samples_matches_len() {
        let ds = SurrogateDataset::new(SurrogateSpec::gisette().scaled(20, 15));
        assert_eq!(ds.all_samples().len(), 15);
        assert_eq!(ds.len(), 15);
        assert!(!ds.is_empty());
    }

    #[test]
    fn feature_scales_are_heterogeneous() {
        let ds = SurrogateDataset::new(SurrogateSpec::rcv1().scaled(200, 10));
        let min = ds.scales.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ds.scales.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 2.0, "scales are too uniform: {min}..{max}");
    }

    #[test]
    #[should_panic(expected = "density must be in")]
    fn invalid_density_panics() {
        let mut spec = SurrogateSpec::gisette();
        spec.density = 0.0;
        SurrogateDataset::new(spec);
    }
}
