//! Stream plumbing: buffered shuffling, bootstrap resampling and prefix
//! splits.
//!
//! The paper's analysis assumes i.i.d. samples and notes that real streams
//! can be brought close to that by buffering and shuffling incoming data
//! (Section 3) — the same device PyTorch/TensorFlow data loaders use.
//! [`ShuffleBuffer`] implements exactly that. [`BootstrapResampler`]
//! reproduces the replication device of Section 6.2, which bootstraps the
//! "gisette" dataset into thousands of pseudo-datasets to study the
//! distribution of empirical covariance entries.

use ascs_core::Sample;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Derives the RNG seed of sample `index` of a stream rooted at `base`.
///
/// Two full splitmix64 finalisation rounds over `(base, index)`, so nearby
/// indices land on unrelated seeds and different base seeds never alias.
/// Every generator that wants out-of-order (and therefore parallel) sample
/// generation should derive its per-sample RNG through this one function:
/// the derivation depends only on `(base, index)` — never on which chunk of
/// work a thread happened to receive — which is what makes
/// [`generate_samples_parallel`] bit-identical for every thread count.
#[inline]
pub fn derive_sample_seed(base: u64, index: u64) -> u64 {
    fn splitmix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    splitmix(splitmix(base ^ 0x5EED_5EED_5EED_5EED).wrapping_add(index))
}

/// Generates `n` samples by index on up to `threads` OS threads.
///
/// Every workload generator in this crate derives a per-sample RNG from the
/// sample index, so samples can be produced out of order — and therefore in
/// parallel — while remaining identical to the sequential generation. The
/// result is returned in index order, so
/// `generate_samples_parallel(n, k, f)` equals `(0..n).map(f).collect()`
/// for any thread count.
///
/// The chunking below is an implementation detail: chunk boundaries depend
/// on the thread count, so `generate` **must not** carry chunk-level state
/// (e.g. an RNG seeded once per worker). Generators that need a seed should
/// derive it per *sample* via [`derive_sample_seed`]`(base, index)` inside
/// the closure, so the seed cannot observe the chunk layout.
pub fn generate_samples_parallel<F>(n: u64, threads: usize, generate: F) -> Vec<Sample>
where
    F: Fn(u64) -> Sample + Sync,
{
    let threads = threads.clamp(1, (n as usize).max(1));
    if threads == 1 {
        return (0..n).map(generate).collect();
    }
    let per = (n as usize).div_ceil(threads);
    let generate = &generate;
    let parts: Vec<Vec<Sample>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let start = ((i * per) as u64).min(n);
                let end = (((i + 1) * per) as u64).min(n);
                scope.spawn(move || (start..end).map(generate).collect::<Vec<_>>())
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sample generation thread panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(n as usize);
    for mut part in parts {
        out.append(&mut part);
    }
    out
}

/// A bounded shuffle buffer: samples are pushed in stream order and popped
/// in (locally) randomised order, approximating an i.i.d. stream from a
/// correlated one.
#[derive(Debug)]
pub struct ShuffleBuffer {
    capacity: usize,
    buffer: Vec<Sample>,
    rng: ChaCha8Rng,
}

impl ShuffleBuffer {
    /// Creates a buffer holding at most `capacity` samples.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "shuffle buffer needs positive capacity");
        Self {
            capacity,
            buffer: Vec::with_capacity(capacity),
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Number of samples currently buffered.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// Pushes a sample. If the buffer is full, a uniformly random buffered
    /// sample is evicted and returned (the classic reservoir-style shuffle
    /// used by streaming data loaders).
    pub fn push(&mut self, sample: Sample) -> Option<Sample> {
        if self.buffer.len() < self.capacity {
            self.buffer.push(sample);
            return None;
        }
        let idx = self.rng.gen_range(0..self.buffer.len());
        let evicted = std::mem::replace(&mut self.buffer[idx], sample);
        Some(evicted)
    }

    /// Drains the remaining buffered samples in random order.
    pub fn drain(&mut self) -> Vec<Sample> {
        let mut out = std::mem::take(&mut self.buffer);
        // Fisher–Yates with the buffer's RNG.
        for i in (1..out.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            out.swap(i, j);
        }
        out
    }

    /// Convenience: shuffles an entire finite stream through the buffer and
    /// returns it in the randomised order.
    pub fn shuffle_all(mut self, samples: impl IntoIterator<Item = Sample>) -> Vec<Sample> {
        let mut out = Vec::new();
        for s in samples {
            if let Some(evicted) = self.push(s) {
                out.push(evicted);
            }
        }
        out.extend(self.drain());
        out
    }
}

/// Bootstrap resampler over a base dataset: each replicate draws `n`
/// samples with replacement, mimicking Section 6.2's construction of
/// thousands of pseudo-datasets from a single real dataset.
#[derive(Debug, Clone)]
pub struct BootstrapResampler {
    base: Vec<Sample>,
    seed: u64,
}

impl BootstrapResampler {
    /// Creates a resampler over `base` samples.
    ///
    /// # Panics
    /// Panics if `base` is empty.
    pub fn new(base: Vec<Sample>, seed: u64) -> Self {
        assert!(!base.is_empty(), "cannot bootstrap an empty dataset");
        Self { base, seed }
    }

    /// Number of base samples.
    pub fn base_len(&self) -> usize {
        self.base.len()
    }

    /// Draws replicate `replicate_id` of length `n` (deterministic per id).
    pub fn replicate(&self, replicate_id: u64, n: usize) -> Vec<Sample> {
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.seed ^ 0xB007 ^ replicate_id.wrapping_mul(0x2545_F491_4F6C_DD1D),
        );
        (0..n)
            .map(|_| self.base[rng.gen_range(0..self.base.len())].clone())
            .collect()
    }
}

/// Splits a sample stream into a pilot prefix (used to estimate `μ̂`, `σ`,
/// `u` — Section 8.1 uses the first 5 %) and the remaining stream.
pub fn pilot_split(samples: &[Sample], pilot_fraction: f64) -> (&[Sample], &[Sample]) {
    let f = pilot_fraction.clamp(0.0, 1.0);
    let cut = ((samples.len() as f64) * f).round() as usize;
    samples.split_at(cut.min(samples.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numbered_samples(n: usize) -> Vec<Sample> {
        (0..n).map(|i| Sample::dense(vec![i as f64, 0.0])).collect()
    }

    fn first_coordinate(s: &Sample) -> f64 {
        s.value(0)
    }

    #[test]
    fn parallel_generation_matches_sequential_for_any_thread_count() {
        let generate = |i: u64| Sample::dense(vec![i as f64, (i * i) as f64]);
        let sequential: Vec<Sample> = (0..37).map(generate).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(
                generate_samples_parallel(37, threads, generate),
                sequential,
                "thread count {threads} changed the stream"
            );
        }
        assert!(generate_samples_parallel(0, 4, generate).is_empty());
    }

    /// Bit-level identity (not just `PartialEq`) of seeded parallel
    /// generation across thread counts, including counts that do not divide
    /// the stream length and counts exceeding it. The generator draws from a
    /// ChaCha RNG seeded per sample via [`derive_sample_seed`] — exactly the
    /// pattern every scenario generator uses — so this pins the
    /// seed-per-sample derivation contract: chunk layout can never leak into
    /// the stream.
    #[test]
    fn seeded_parallel_generation_is_bit_identical_for_any_thread_count() {
        use rand::{Rng, SeedableRng};
        use rand_chacha::ChaCha8Rng;
        let seeded = |base: u64| {
            move |index: u64| {
                let mut rng = ChaCha8Rng::seed_from_u64(derive_sample_seed(base, index));
                Sample::dense(vec![
                    rng.gen_range(-1.0..1.0_f64),
                    rng.gen_range(-1.0..1.0_f64),
                    index as f64,
                ])
            }
        };
        let reference = generate_samples_parallel(41, 1, seeded(99));
        for threads in [2, 3, 5, 8, 64] {
            let parallel = generate_samples_parallel(41, threads, seeded(99));
            assert_eq!(parallel.len(), reference.len());
            for (i, (a, b)) in reference.iter().zip(&parallel).enumerate() {
                let (Sample::Dense(va), Sample::Dense(vb)) = (a, b) else {
                    panic!("dense samples expected");
                };
                assert!(
                    va.iter().zip(vb).all(|(x, y)| x.to_bits() == y.to_bits()),
                    "thread count {threads} changed sample {i} at the bit level"
                );
            }
        }
        // A different base seed must produce a different stream.
        assert_ne!(generate_samples_parallel(41, 4, seeded(100)), reference);
    }

    #[test]
    fn derived_sample_seeds_do_not_collide_locally() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for base in [0u64, 1, 99, u64::MAX] {
            for index in 0..2048u64 {
                assert!(
                    seen.insert(derive_sample_seed(base, index)),
                    "seed collision at base={base}, index={index}"
                );
            }
        }
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let samples = numbered_samples(100);
        let shuffled = ShuffleBuffer::new(16, 1).shuffle_all(samples.clone());
        assert_eq!(shuffled.len(), 100);
        let mut orig: Vec<f64> = samples.iter().map(first_coordinate).collect();
        let mut got: Vec<f64> = shuffled.iter().map(first_coordinate).collect();
        orig.sort_by(f64::total_cmp);
        got.sort_by(f64::total_cmp);
        assert_eq!(orig, got);
    }

    #[test]
    fn shuffle_actually_permutes() {
        let samples = numbered_samples(200);
        let shuffled = ShuffleBuffer::new(64, 2).shuffle_all(samples.clone());
        let displaced = shuffled
            .iter()
            .zip(samples.iter())
            .filter(|(a, b)| a != b)
            .count();
        assert!(displaced > 100, "only {displaced} samples moved");
    }

    #[test]
    fn buffer_does_not_exceed_capacity() {
        let mut buf = ShuffleBuffer::new(4, 3);
        let mut emitted = 0;
        for s in numbered_samples(20) {
            if buf.push(s).is_some() {
                emitted += 1;
            }
            assert!(buf.len() <= 4);
        }
        assert_eq!(emitted, 16);
        assert_eq!(buf.drain().len(), 4);
        assert!(buf.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn zero_capacity_buffer_panics() {
        ShuffleBuffer::new(0, 0);
    }

    #[test]
    fn bootstrap_replicates_are_deterministic_and_distinct() {
        let resampler = BootstrapResampler::new(numbered_samples(50), 7);
        let a = resampler.replicate(0, 30);
        let b = resampler.replicate(0, 30);
        let c = resampler.replicate(1, 30);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 30);
        assert_eq!(resampler.base_len(), 50);
    }

    #[test]
    fn bootstrap_only_draws_from_base() {
        let resampler = BootstrapResampler::new(numbered_samples(10), 8);
        for s in resampler.replicate(3, 100) {
            let v = first_coordinate(&s);
            assert!((0.0..10.0).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn bootstrap_of_empty_base_panics() {
        BootstrapResampler::new(Vec::new(), 0);
    }

    #[test]
    fn pilot_split_fractions() {
        let samples = numbered_samples(100);
        let (pilot, rest) = pilot_split(&samples, 0.05);
        assert_eq!(pilot.len(), 5);
        assert_eq!(rest.len(), 95);
        let (all, none) = pilot_split(&samples, 1.5);
        assert_eq!(all.len(), 100);
        assert!(none.is_empty());
        let (zero, everything) = pilot_split(&samples, -0.1);
        assert!(zero.is_empty());
        assert_eq!(everything.len(), 100);
    }
}
