//! Cold Filter baseline — Zhou et al., SIGMOD 2018.
//!
//! The Cold Filter is a meta-framework: a cheap, small filter absorbs the
//! long tail of cold items, and only items whose accumulated magnitude
//! crosses a threshold are forwarded to the (more accurate, more expensive)
//! main structure. The effect is similar in spirit to ASCS — keep the noise
//! out of the expensive sketch — but the gating is by accumulated magnitude
//! rather than by an adaptive estimate-vs-threshold test, and it was
//! designed for frequency counting.
//!
//! ### Adaptation to signed covariance streams
//!
//! The original uses two layers of small saturating counters over
//! non-negative counts. Covariance updates are signed reals, so this
//! reproduction keeps the *gating* decision on a count-min sketch over
//! `|w|` (accumulated magnitude, never negative) while the *values* of cold
//! items are stored in a small count sketch. Once an item's magnitude
//! estimate crosses `threshold`, all its subsequent updates go to the main
//! count sketch. A point query sums the cold-layer and main-layer
//! estimates, so no mass is lost at the promotion boundary. This preserves
//! the structure (cheap front filter, accurate back end, threshold
//! promotion) that the paper compares against; see DESIGN.md.

use crate::{CountMinSketch, CountSketch, PointSketch};

/// Cold Filter in front of a main count sketch.
#[derive(Debug, Clone)]
pub struct ColdFilter {
    /// Gate: accumulated |w| per item (over-estimating, non-negative).
    gate: CountMinSketch,
    /// Value store for cold items.
    cold_values: CountSketch,
    /// Main sketch receiving updates of promoted (hot) items.
    main: CountSketch,
    /// Promotion threshold on accumulated magnitude.
    threshold: f64,
    promoted_updates: u64,
    cold_updates: u64,
}

impl ColdFilter {
    /// Creates a cold filter.
    ///
    /// * `main_rows × main_range` — geometry of the main count sketch;
    /// * `filter_rows × filter_range` — geometry of both the gate and the
    ///   cold value store (the "small" structures);
    /// * `threshold` — accumulated-magnitude level at which an item is
    ///   promoted to the main sketch.
    ///
    /// # Panics
    /// Panics if `threshold` is not strictly positive.
    pub fn new(
        main_rows: usize,
        main_range: usize,
        filter_rows: usize,
        filter_range: usize,
        threshold: f64,
        seed: u64,
    ) -> Self {
        assert!(threshold > 0.0, "cold filter threshold must be positive");
        Self {
            gate: CountMinSketch::new(filter_rows, filter_range, seed ^ 0x1),
            cold_values: CountSketch::new(filter_rows, filter_range, seed ^ 0x2),
            main: CountSketch::new(main_rows, main_range, seed ^ 0x3),
            threshold,
            promoted_updates: 0,
            cold_updates: 0,
        }
    }

    /// The promotion threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Number of updates routed to the main sketch.
    pub fn promoted_updates(&self) -> u64 {
        self.promoted_updates
    }

    /// Number of updates absorbed by the cold layer.
    pub fn cold_updates(&self) -> u64 {
        self.cold_updates
    }

    /// True when `key` has already crossed the promotion threshold.
    pub fn is_hot(&self, key: u64) -> bool {
        self.gate.estimate(key) >= self.threshold
    }

    /// Adds `weight` to item `key`.
    pub fn update(&mut self, key: u64, weight: f64) {
        self.gate.update(key, weight.abs());
        if self.gate.estimate(key) >= self.threshold {
            self.main.update(key, weight);
            self.promoted_updates += 1;
        } else {
            self.cold_values.update(key, weight);
            self.cold_updates += 1;
        }
    }

    /// Point query: cold-layer estimate plus main-layer estimate.
    pub fn estimate(&self, key: u64) -> f64 {
        self.cold_values.estimate(key) + self.main.estimate(key)
    }
}

impl PointSketch for ColdFilter {
    fn update(&mut self, key: u64, weight: f64) {
        ColdFilter::update(self, key, weight);
    }
    fn estimate(&self, key: u64) -> f64 {
        ColdFilter::estimate(self, key)
    }
    fn memory_words(&self) -> usize {
        self.gate.memory_words() + self.cold_values.memory_words() + self.main.memory_words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_items_never_reach_the_main_sketch() {
        let mut cf = ColdFilter::new(3, 256, 2, 128, 10.0, 1);
        for key in 0..20u64 {
            cf.update(key, 0.1); // total magnitude 0.1 « threshold
        }
        assert_eq!(cf.promoted_updates(), 0);
        assert_eq!(cf.cold_updates(), 20);
    }

    #[test]
    fn hot_items_get_promoted_and_estimates_cover_both_layers() {
        let mut cf = ColdFilter::new(3, 256, 2, 128, 5.0, 2);
        for _ in 0..100 {
            cf.update(7, 1.0);
        }
        assert!(cf.is_hot(7));
        assert!(cf.promoted_updates() > 0);
        // Total mass split across layers still adds up.
        assert!((cf.estimate(7) - 100.0).abs() < 5.0);
    }

    #[test]
    fn signed_updates_accumulate_correctly() {
        let mut cf = ColdFilter::new(3, 256, 2, 128, 4.0, 3);
        for _ in 0..10 {
            cf.update(9, -1.0);
        }
        assert!(cf.is_hot(9), "magnitude gating must use |w|");
        assert!((cf.estimate(9) + 10.0).abs() < 2.0);
    }

    #[test]
    fn threshold_controls_promotion_point() {
        let mut early = ColdFilter::new(2, 64, 2, 64, 2.0, 4);
        let mut late = ColdFilter::new(2, 64, 2, 64, 50.0, 4);
        for _ in 0..20 {
            early.update(1, 1.0);
            late.update(1, 1.0);
        }
        assert!(early.promoted_updates() > 0);
        assert_eq!(late.promoted_updates(), 0);
    }

    #[test]
    fn memory_words_counts_all_three_structures() {
        let cf = ColdFilter::new(2, 100, 2, 50, 1.0, 5);
        assert_eq!(cf.memory_words(), 2 * 100 + 2 * 50 + 2 * 50);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn non_positive_threshold_panics() {
        let _ = ColdFilter::new(2, 64, 2, 64, 0.0, 6);
    }

    #[test]
    fn estimate_of_untouched_key_is_near_zero() {
        let mut cf = ColdFilter::new(3, 512, 2, 256, 5.0, 7);
        for key in 0..50u64 {
            cf.update(key, 0.5);
        }
        assert!(cf.estimate(10_000).abs() < 0.5);
    }
}
