//! Count-Min sketch (Cormode & Muthukrishnan 2005).
//!
//! Count-Min stores non-negative accumulations and answers point queries
//! with the *minimum* over rows, giving a one-sided (over-estimating)
//! guarantee. In this reproduction it serves two purposes: it is the
//! low-part filter inside [`ColdFilter`](crate::ColdFilter), and it is an
//! ablation baseline showing why the signed count *sketch* (not count-min)
//! is the right substrate for covariance streams whose updates can be
//! negative.

use crate::PointSketch;
use ascs_sketch_hash::HashFamily;

/// A count-min sketch over non-negative weights.
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    family: HashFamily,
    table: Vec<f64>,
    rows: usize,
    range: usize,
    conservative: bool,
    updates: u64,
}

impl CountMinSketch {
    /// Creates a sketch with `rows` rows of `range` buckets.
    pub fn new(rows: usize, range: usize, seed: u64) -> Self {
        let family = HashFamily::new(rows, range, seed);
        Self {
            family,
            table: vec![0.0; rows * range],
            rows,
            range,
            conservative: false,
            updates: 0,
        }
    }

    /// Enables conservative update (only raise the buckets that currently
    /// equal the minimum), which tightens over-estimation for skewed
    /// streams at no memory cost.
    pub fn with_conservative_update(mut self) -> Self {
        self.conservative = true;
        self
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Buckets per row.
    pub fn range(&self) -> usize {
        self.range
    }

    /// Whether conservative update is enabled.
    pub fn is_conservative(&self) -> bool {
        self.conservative
    }

    /// Total updates applied.
    pub fn update_count(&self) -> u64 {
        self.updates
    }

    /// Adds `weight ≥ 0` to item `key`.
    ///
    /// # Panics
    /// Panics if `weight` is negative or NaN. The check runs in release
    /// builds too: count-min estimates are upper bounds of non-negative
    /// accumulations, and a signed update would silently corrupt every
    /// counter the key collides with rather than fail loudly.
    #[inline]
    pub fn update(&mut self, key: u64, weight: f64) {
        assert!(weight >= 0.0, "count-min requires non-negative weights");
        self.updates += 1;
        if self.conservative {
            let current = self.estimate(key);
            let target = current + weight;
            for row in 0..self.rows {
                let bucket = self.family.bucket(row, key);
                let cell = &mut self.table[row * self.range + bucket];
                if *cell < target {
                    *cell = target;
                }
            }
        } else {
            for row in 0..self.rows {
                let bucket = self.family.bucket(row, key);
                self.table[row * self.range + bucket] += weight;
            }
        }
    }

    /// Point query: minimum over rows (never under-estimates).
    #[inline]
    pub fn estimate(&self, key: u64) -> f64 {
        let mut best = f64::INFINITY;
        for row in 0..self.rows {
            let bucket = self.family.bucket(row, key);
            let v = self.table[row * self.range + bucket];
            if v < best {
                best = v;
            }
        }
        if best.is_finite() {
            best
        } else {
            0.0
        }
    }

    /// Resets the table.
    pub fn clear(&mut self) {
        self.table.iter_mut().for_each(|v| *v = 0.0);
        self.updates = 0;
    }
}

impl PointSketch for CountMinSketch {
    fn update(&mut self, key: u64, weight: f64) {
        CountMinSketch::update(self, key, weight);
    }
    fn estimate(&self, key: u64) -> f64 {
        CountMinSketch::estimate(self, key)
    }
    fn memory_words(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_underestimates() {
        let mut cm = CountMinSketch::new(3, 64, 1);
        let mut truth = std::collections::HashMap::new();
        for key in 0..500u64 {
            let w = (key % 5) as f64;
            cm.update(key, w);
            *truth.entry(key).or_insert(0.0) += w;
        }
        for (key, want) in truth {
            assert!(cm.estimate(key) >= want - 1e-12, "underestimated key {key}");
        }
    }

    #[test]
    fn exact_without_collisions() {
        let mut cm = CountMinSketch::new(4, 4096, 2);
        for key in 0..50u64 {
            cm.update(key, 2.0);
            cm.update(key, 3.0);
        }
        for key in 0..50u64 {
            assert!((cm.estimate(key) - 5.0).abs() < 1e-12);
        }
    }

    #[test]
    fn conservative_update_is_no_worse() {
        let mut plain = CountMinSketch::new(2, 32, 3);
        let mut cons = CountMinSketch::new(2, 32, 3).with_conservative_update();
        let stream: Vec<(u64, f64)> = (0..2000).map(|i| (i % 200, 1.0)).collect();
        for &(k, w) in &stream {
            plain.update(k, w);
            cons.update(k, w);
        }
        for key in 0..200u64 {
            assert!(cons.estimate(key) <= plain.estimate(key) + 1e-9);
            assert!(cons.estimate(key) >= 10.0 - 1e-9); // true count
        }
    }

    #[test]
    fn empty_sketch_estimates_zero() {
        let cm = CountMinSketch::new(3, 16, 4);
        assert_eq!(cm.estimate(99), 0.0);
    }

    #[test]
    fn clear_resets() {
        let mut cm = CountMinSketch::new(2, 16, 5);
        cm.update(1, 7.0);
        cm.clear();
        assert_eq!(cm.estimate(1), 0.0);
        assert_eq!(cm.update_count(), 0);
    }

    #[test]
    fn memory_words_reports_table_size() {
        let cm = CountMinSketch::new(5, 100, 6);
        assert_eq!(cm.memory_words(), 500);
    }
}
