//! Augmented Sketch (ASketch) baseline — Roy, Khan & Alonso, SIGMOD 2016.
//!
//! ASketch places a small *filter* of exactly tracked hot items in front of
//! a count sketch. Updates to filtered items bypass the sketch entirely
//! (removing their collision noise); updates to other items go to the sketch
//! and an item is promoted into the filter when its sketch estimate exceeds
//! the smallest estimate currently held by the filter. On promotion the
//! evicted item's filter-accumulated delta is flushed back into the sketch
//! so no mass is lost.
//!
//! The original ASketch counts non-negative frequencies; covariance streams
//! carry signed real-valued updates, so "hotness" is judged by the absolute
//! value of the accumulated estimate, exactly as the paper's Table 4
//! comparison requires (it reports ASketch on the same correlation streams).

use crate::{CountSketch, PointSketch};

/// One filter slot.
#[derive(Debug, Clone, Copy)]
struct Slot {
    key: u64,
    /// Current best estimate of the item's total accumulated weight.
    value: f64,
    /// Portion of `value` that is already reflected inside the backing
    /// sketch (the estimate it carried when promoted). The difference
    /// `value - in_sketch` is flushed to the sketch on eviction.
    in_sketch: f64,
}

/// Augmented Sketch: exact filter for hot items + count sketch for the rest.
#[derive(Debug, Clone)]
pub struct AugmentedSketch {
    sketch: CountSketch,
    filter: Vec<Slot>,
    filter_capacity: usize,
}

impl AugmentedSketch {
    /// Creates an ASketch with a filter of `filter_capacity` slots in front
    /// of a count sketch with `rows × range` buckets.
    ///
    /// # Panics
    /// Panics if `filter_capacity == 0` (use a plain [`CountSketch`] then).
    pub fn new(rows: usize, range: usize, filter_capacity: usize, seed: u64) -> Self {
        assert!(
            filter_capacity > 0,
            "ASketch filter needs at least one slot"
        );
        Self {
            sketch: CountSketch::new(rows, range, seed),
            filter: Vec::with_capacity(filter_capacity),
            filter_capacity,
        }
    }

    /// Builds an ASketch from a total memory budget measured in float slots,
    /// spending `filter_fraction` of it on the filter (two words per slot:
    /// key + value) and the rest on the count sketch.
    pub fn with_budget(rows: usize, budget_words: usize, filter_fraction: f64, seed: u64) -> Self {
        let filter_words = ((budget_words as f64 * filter_fraction) as usize).max(2);
        let filter_capacity = (filter_words / 2).max(1);
        let sketch_words = budget_words.saturating_sub(filter_capacity * 2).max(rows);
        let range = (sketch_words / rows).max(1);
        Self::new(rows, range, filter_capacity, seed)
    }

    /// Number of filter slots.
    pub fn filter_capacity(&self) -> usize {
        self.filter_capacity
    }

    /// Number of filter slots currently occupied.
    pub fn filter_len(&self) -> usize {
        self.filter.len()
    }

    /// The backing count sketch.
    pub fn sketch(&self) -> &CountSketch {
        &self.sketch
    }

    fn filter_position(&self, key: u64) -> Option<usize> {
        self.filter.iter().position(|s| s.key == key)
    }

    /// Index of the filter slot with the smallest absolute estimate.
    fn coldest_slot(&self) -> Option<usize> {
        (0..self.filter.len()).min_by(|&a, &b| {
            self.filter[a]
                .value
                .abs()
                .total_cmp(&self.filter[b].value.abs())
        })
    }

    /// Adds `weight` to item `key`.
    pub fn update(&mut self, key: u64, weight: f64) {
        if let Some(pos) = self.filter_position(key) {
            self.filter[pos].value += weight;
            return;
        }
        self.sketch.update(key, weight);
        let estimate = self.sketch.estimate(key);

        if self.filter.len() < self.filter_capacity {
            self.filter.push(Slot {
                key,
                value: estimate,
                in_sketch: estimate,
            });
            return;
        }

        // Promote if this item's estimate now exceeds the coldest filtered
        // item (by absolute value).
        let coldest = match self.coldest_slot() {
            Some(idx) => idx,
            None => return,
        };
        if estimate.abs() > self.filter[coldest].value.abs() {
            let evicted = self.filter[coldest];
            // Flush the evicted item's filter-side delta into the sketch so
            // its mass is preserved.
            let delta = evicted.value - evicted.in_sketch;
            if delta != 0.0 {
                self.sketch.update(evicted.key, delta);
            }
            self.filter[coldest] = Slot {
                key,
                value: estimate,
                in_sketch: estimate,
            };
        }
    }

    /// Point query: the filter answers exactly for hot items, the sketch
    /// answers for everything else.
    pub fn estimate(&self, key: u64) -> f64 {
        if let Some(pos) = self.filter_position(key) {
            self.filter[pos].value
        } else {
            self.sketch.estimate(key)
        }
    }

    /// Keys currently held by the filter (hottest items), estimate-descending.
    pub fn filtered_keys(&self) -> Vec<(u64, f64)> {
        let mut v: Vec<(u64, f64)> = self.filter.iter().map(|s| (s.key, s.value)).collect();
        v.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()));
        v
    }
}

impl PointSketch for AugmentedSketch {
    fn update(&mut self, key: u64, weight: f64) {
        AugmentedSketch::update(self, key, weight);
    }
    fn estimate(&self, key: u64) -> f64 {
        AugmentedSketch::estimate(self, key)
    }
    fn memory_words(&self) -> usize {
        self.sketch.memory_words() + 2 * self.filter_capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn filtered_items_are_exact() {
        let mut a = AugmentedSketch::new(3, 64, 4, 1);
        for _ in 0..10 {
            a.update(42, 1.5);
        }
        assert!((a.estimate(42) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn hot_item_gets_promoted_over_cold_ones() {
        let mut a = AugmentedSketch::new(3, 256, 2, 2);
        // Fill the filter with two lukewarm items.
        a.update(1, 1.0);
        a.update(2, 1.0);
        // A genuinely hot item arrives later.
        for _ in 0..100 {
            a.update(3, 1.0);
        }
        let hot: Vec<u64> = a.filtered_keys().into_iter().map(|(k, _)| k).collect();
        assert!(hot.contains(&3), "hot item not promoted: {hot:?}");
    }

    #[test]
    fn eviction_preserves_total_mass() {
        let mut a = AugmentedSketch::new(5, 1024, 1, 3);
        // Item 1 enters the filter, accumulates, then is evicted by item 2.
        for _ in 0..20 {
            a.update(1, 1.0);
        }
        for _ in 0..100 {
            a.update(2, 1.0);
        }
        // Item 1's 20 units must survive (now answered by the sketch).
        assert!((a.estimate(1) - 20.0).abs() < 2.0);
        assert!((a.estimate(2) - 100.0).abs() < 2.0);
    }

    #[test]
    fn behaves_sensibly_on_signed_streams() {
        let mut a = AugmentedSketch::new(3, 512, 8, 4);
        for _ in 0..50 {
            a.update(7, -2.0);
        }
        assert!((a.estimate(7) + 100.0).abs() < 2.0);
        // A strongly negative item is still "hot" by absolute value.
        let hot: Vec<u64> = a.filtered_keys().into_iter().map(|(k, _)| k).collect();
        assert!(hot.contains(&7));
    }

    #[test]
    fn accuracy_no_worse_than_plain_cs_for_heavy_items() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let rows = 3;
        let range = 128;
        let mut cs = CountSketch::new(rows, range, 9);
        let mut asketch = AugmentedSketch::new(rows, range, 16, 9);
        // Heavy items 0..8, background noise on 1000 other keys.
        for t in 0..3000u64 {
            let heavy = t % 8;
            cs.update(heavy, 1.0);
            asketch.update(heavy, 1.0);
            let noise_key = 100 + (rng.gen::<u64>() % 1000);
            let w = rng.gen_range(-0.5..0.5);
            cs.update(noise_key, w);
            asketch.update(noise_key, w);
        }
        let truth = 3000.0 / 8.0;
        let cs_err: f64 = (0..8u64).map(|k| (cs.estimate(k) - truth).abs()).sum();
        let as_err: f64 = (0..8u64).map(|k| (asketch.estimate(k) - truth).abs()).sum();
        assert!(
            as_err <= cs_err + 1e-6,
            "ASketch error {as_err} worse than CS {cs_err}"
        );
    }

    #[test]
    fn memory_accounts_for_filter_and_sketch() {
        let a = AugmentedSketch::new(2, 100, 10, 6);
        assert_eq!(a.memory_words(), 200 + 20);
    }

    #[test]
    fn budget_constructor_respects_total() {
        let budget = 10_000;
        let a = AugmentedSketch::with_budget(5, budget, 0.1, 7);
        assert!(a.memory_words() <= budget + 10);
        assert!(a.filter_capacity() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_filter_capacity_panics() {
        let _ = AugmentedSketch::new(2, 16, 0, 1);
    }
}
