//! The Count Sketch data structure (Charikar, Chen, Farach-Colton 2002).

use crate::PointSketch;
use ascs_sketch_hash::codec::{self, CodecError};
use ascs_sketch_hash::{HashFamily, HashPlan, RowLocations, MAX_ROWS};

/// Upper bound on `rows × range` accepted by [`CountSketch::restore`] — a
/// corrupt header cannot demand more than 2 GiB of table.
pub const MAX_TABLE_WORDS: u64 = 1 << 28;

/// Slots per block of the [`CountSketch::estimate_many`] sweep. Each block
/// gathers row by row, so the working set per inner loop is one table row
/// (`R × 8` bytes) plus the block buffers — small enough that consecutive
/// slots hitting nearby buckets actually share cache lines, instead of the
/// per-key query order that cycles through all `K` rows between any two
/// touches of the same row.
const SWEEP_BLOCK: usize = 1024;

/// A count sketch `W ∈ R^{K×R}`.
///
/// Each update `(i, w)` adds `w · s_e(i)` to bucket `h_e(i)` of every row
/// `e`; a point query returns the median over rows of `W[e, h_e(i)] · s_e(i)`
/// (equation (1) of the paper). The sketch is an unbiased estimator of the
/// accumulated weight per item, with error governed by the mass of colliding
/// items — which is exactly the noise term ASCS's active sampling shrinks.
///
/// ```
/// use ascs_count_sketch::{CountSketch, PointSketch};
/// let mut cs = CountSketch::new(5, 1024, 42);
/// for _ in 0..100 {
///     cs.update(7, 1.0);
/// }
/// cs.update(9, 3.0);
/// assert!((cs.estimate(7) - 100.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct CountSketch {
    family: HashFamily,
    /// Row-major `K × R` table of accumulated signed weights.
    table: Vec<f64>,
    rows: usize,
    range: usize,
    seed: u64,
    updates: u64,
}

impl CountSketch {
    /// Creates a sketch with `rows` hash tables (`K`) of `range` buckets
    /// (`R`) each, seeded deterministically.
    ///
    /// # Panics
    /// Panics if `rows == 0` or `range == 0`.
    pub fn new(rows: usize, range: usize, seed: u64) -> Self {
        let family = HashFamily::new(rows, range, seed);
        Self {
            family,
            table: vec![0.0; rows * range],
            rows,
            range,
            seed,
            updates: 0,
        }
    }

    /// Creates a sketch from a total memory budget of `budget_words` float
    /// slots split across `rows` rows (`R = budget / K`), the convention of
    /// Section 8.1 / Table 5 of the paper.
    pub fn with_budget(rows: usize, budget_words: usize, seed: u64) -> Self {
        assert!(rows > 0, "budget split needs at least one row");
        let range = (budget_words / rows).max(1);
        Self::new(rows, range, seed)
    }

    /// Number of rows `K`.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Buckets per row `R`.
    pub fn range(&self) -> usize {
        self.range
    }

    /// Seed used to derive the hash family.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total number of updates applied.
    pub fn update_count(&self) -> u64 {
        self.updates
    }

    /// The underlying hash family (shared with ASCS so that the active
    /// sampling query and the insertion hit the same buckets).
    pub fn family(&self) -> &HashFamily {
        &self.family
    }

    /// Raw table access for diagnostics and tests.
    pub fn table(&self) -> &[f64] {
        &self.table
    }

    /// Resets all buckets to zero (keeps the hash family).
    pub fn clear(&mut self) {
        self.table.fill(0.0);
        self.updates = 0;
    }

    /// Adds `weight` to item `key` in every row.
    #[inline]
    pub fn update(&mut self, key: u64, weight: f64) {
        for row in 0..self.rows {
            let hasher = &self.family.row_hashers()[row];
            let bucket = hasher.bucket(key, self.range);
            let sign = hasher.sign_f64(key);
            self.table[row * self.range + bucket] += weight * sign;
        }
        self.updates += 1;
    }

    /// Hashes `key` once, producing the per-row locations that
    /// [`CountSketch::estimate_at`], [`CountSketch::row_values_at`] and
    /// [`CountSketch::update_at`] reuse. This is the entry point of the
    /// hash-once ingestion discipline: a gate read, an insertion and a
    /// post-insert estimate can all share one hashing round.
    ///
    /// # Panics
    /// Panics if the sketch has more than [`MAX_ROWS`] rows.
    #[inline]
    pub fn locate(&self, key: u64) -> RowLocations {
        self.family.locate_all(key)
    }

    /// Reads the signed per-row estimates at precomputed locations into
    /// `buf` (no hashing); returns the number of rows written. Each entry is
    /// `W[e, h_e(i)] · s_e(i)`, the quantity the median in
    /// [`CountSketch::estimate`] is taken over.
    #[inline]
    pub fn row_values_at(&self, locs: &RowLocations, buf: &mut [f64; MAX_ROWS]) -> usize {
        let mask = locs.sign_mask();
        let mut base = 0usize;
        for ((row, slot), &bucket) in buf.iter_mut().enumerate().zip(locs.buckets()) {
            let sign = ascs_sketch_hash::sign_from_bit(u64::from(mask >> row) & 1);
            *slot = self.table[base + bucket as usize] * sign;
            base += self.range;
        }
        locs.len()
    }

    /// Point query at precomputed locations (no hashing). Identical to
    /// [`CountSketch::estimate`] of the key the locations were derived from.
    #[inline]
    pub fn estimate_at(&self, locs: &RowLocations) -> f64 {
        let mut buf = [0.0f64; MAX_ROWS];
        let n = self.row_values_at(locs, &mut buf);
        median_in_place(&mut buf[..n])
    }

    /// Adds `weight` at precomputed locations (no hashing). Identical to
    /// [`CountSketch::update`] of the key the locations were derived from.
    #[inline]
    pub fn update_at(&mut self, locs: &RowLocations, weight: f64) {
        let mask = locs.sign_mask();
        let mut base = 0usize;
        for (row, &bucket) in locs.buckets().iter().enumerate() {
            let sign = ascs_sketch_hash::sign_from_bit(u64::from(mask >> row) & 1);
            self.table[base + bucket as usize] += weight * sign;
            base += self.range;
        }
        self.updates += 1;
    }

    /// Builds a reusable [`HashPlan`] for the dense key set `0..len` from
    /// this sketch's hash family. Every plan-driven call below replays the
    /// arena instead of hashing.
    pub fn build_plan(&self, len: usize) -> HashPlan {
        HashPlan::build_dense(&self.family, len)
    }

    /// Asserts that `plan` was derived from this sketch's hash family —
    /// running a foreign plan would silently read and write wrong buckets.
    #[inline]
    pub fn verify_plan(&self, plan: &HashPlan) {
        assert!(
            plan.matches(&self.family),
            "hash plan geometry/seed does not match this sketch \
             (plan {}x{} seed {}, sketch {}x{} seed {})",
            plan.rows(),
            plan.range(),
            plan.seed(),
            self.rows,
            self.range,
            self.seed
        );
    }

    /// Adds `weight` at a precomputed plan slot (no hashing). Identical to
    /// [`CountSketch::update`] of the key the slot was built from.
    #[inline]
    pub fn update_planned(&mut self, plan: &HashPlan, slot: usize, weight: f64) {
        debug_assert!(plan.matches(&self.family));
        let (buckets, mask) = plan.entry(slot);
        let mut base = 0usize;
        for (row, &bucket) in buckets.iter().enumerate() {
            let sign = ascs_sketch_hash::sign_from_bit(u64::from(mask >> row) & 1);
            self.table[base + bucket as usize] += weight * sign;
            base += self.range;
        }
        self.updates += 1;
    }

    /// Reads the signed per-row estimates at a plan slot into `buf` (no
    /// hashing); returns the number of rows written. Bit-identical to
    /// [`CountSketch::row_values_at`] of the slot's locations.
    ///
    /// # Panics
    /// Panics if the sketch has more than [`MAX_ROWS`] rows — the stack
    /// buffer caps there, matching [`CountSketch::locate`]; such geometries
    /// must use [`CountSketch::estimate_many`] (heap buffers) or the
    /// per-key APIs instead.
    #[inline]
    pub fn row_values_planned(
        &self,
        plan: &HashPlan,
        slot: usize,
        buf: &mut [f64; MAX_ROWS],
    ) -> usize {
        debug_assert!(plan.matches(&self.family));
        let (buckets, mask) = plan.entry(slot);
        assert!(
            buckets.len() <= MAX_ROWS,
            "row_values_planned supports at most {MAX_ROWS} rows, plan has {}",
            buckets.len()
        );
        let mut base = 0usize;
        for ((row, out), &bucket) in buf.iter_mut().enumerate().zip(buckets) {
            let sign = ascs_sketch_hash::sign_from_bit(u64::from(mask >> row) & 1);
            *out = self.table[base + bucket as usize] * sign;
            base += self.range;
        }
        buckets.len()
    }

    /// Point query at a plan slot (no hashing). Identical to
    /// [`CountSketch::estimate`] of the key the slot was built from.
    ///
    /// # Panics
    /// See [`CountSketch::row_values_planned`].
    #[inline]
    pub fn estimate_planned(&self, plan: &HashPlan, slot: usize) -> f64 {
        let mut buf = [0.0f64; MAX_ROWS];
        let n = self.row_values_planned(plan, slot, &mut buf);
        median_in_place(&mut buf[..n])
    }

    /// Touches the table buckets of a plan slot without using their values —
    /// a safe software prefetch. Batch ingestion loops call this a few
    /// entries ahead of the update they are processing, so the (randomly
    /// scattered) bucket loads are in flight while the current update's gate
    /// and median run.
    ///
    /// Implemented as early loads folded through [`std::hint::black_box`]
    /// (the crate forbids `unsafe`, so the dedicated prefetch intrinsics are
    /// out of reach); the loaded lines are hot in L1 when the real access
    /// arrives, which is all a prefetch does.
    #[inline]
    pub fn prefetch_planned(&self, plan: &HashPlan, slot: usize) {
        let (buckets, _) = plan.entry(slot);
        let mut acc = 0.0f64;
        let mut base = 0usize;
        for &bucket in buckets {
            acc += self.table[base + bucket as usize];
            base += self.range;
        }
        std::hint::black_box(acc);
    }

    /// Answers a point query for **every** slot of `plan` in one
    /// cache-blocked sweep, appending to `out` (cleared first). Produces
    /// bit-identical values to calling [`CountSketch::estimate`] per key,
    /// but turns `len` independent point queries — each cycling through all
    /// `K` table rows — into a blocked pass that gathers row by row within
    /// a block, so the table working set per inner loop is a single row.
    ///
    /// # Panics
    /// Panics if the plan does not match this sketch's family.
    pub fn estimate_many(&self, plan: &HashPlan, out: &mut Vec<f64>) {
        self.verify_plan(plan);
        out.clear();
        out.reserve(plan.len());
        let k = self.rows;
        let mut vals = vec![0.0f64; SWEEP_BLOCK * k];
        let mut start = 0usize;
        while start < plan.len() {
            let block = (plan.len() - start).min(SWEEP_BLOCK);
            // Row-major gather: every table access of this inner loop stays
            // inside one row's region.
            for row in 0..k {
                let base = row * self.range;
                for i in 0..block {
                    let slot = start + i;
                    let sign =
                        ascs_sketch_hash::sign_from_bit(u64::from(plan.sign_mask(slot) >> row) & 1);
                    vals[i * k + row] = self.table[base + plan.bucket(slot, row)] * sign;
                }
            }
            // Per-slot medians over the gathered columns — the same
            // reduction `estimate` runs, so the results are bit-identical.
            for chunk in vals[..block * k].chunks_mut(k) {
                out.push(median_in_place(chunk));
            }
            start += block;
        }
    }

    /// Raw (unsigned) content of one bucket. Used by the sharded ingestion
    /// layer to form merged estimates without materialising a merged table.
    #[inline]
    pub fn raw_bucket(&self, row: usize, bucket: usize) -> f64 {
        self.table[row * self.range + bucket]
    }

    /// Point query: median across rows of the signed bucket contents.
    #[inline]
    pub fn estimate(&self, key: u64) -> f64 {
        // K is small (≤ ~10); use a fixed-capacity buffer on the stack for
        // the common case and fall back to a Vec otherwise.
        if self.rows <= MAX_ROWS {
            let mut buf = [0.0f64; MAX_ROWS];
            for (row, slot) in buf.iter_mut().enumerate().take(self.rows) {
                *slot = self.row_estimate(row, key);
            }
            median_in_place(&mut buf[..self.rows])
        } else {
            let mut buf: Vec<f64> = (0..self.rows)
                .map(|row| self.row_estimate(row, key))
                .collect();
            median_in_place(&mut buf)
        }
    }

    /// Estimate taken from a single row (no median) — exposed for the
    /// one-table analysis of Theorems 1–3 and for ablation benchmarks.
    #[inline]
    pub fn row_estimate(&self, row: usize, key: u64) -> f64 {
        let hasher = &self.family.row_hashers()[row];
        let bucket = hasher.bucket(key, self.range);
        let sign = hasher.sign_f64(key);
        self.table[row * self.range + bucket] * sign
    }

    /// Merges another sketch built with the same `(rows, range, seed)`.
    ///
    /// # Panics
    /// Panics when the configurations differ — merging incompatible
    /// sketches would silently corrupt estimates.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.rows, other.rows, "row count mismatch in merge");
        assert_eq!(self.range, other.range, "range mismatch in merge");
        assert_eq!(self.seed, other.seed, "seed mismatch in merge");
        for (a, b) in self.table.iter_mut().zip(other.table.iter()) {
            *a += b;
        }
        self.updates += other.updates;
    }

    /// Merges `factor ×` another sketch built with the same
    /// `(rows, range, seed)` — the scaled form of linearity the time-aware
    /// backends rely on: `factor = γ^Δt` folds a decayed generation into a
    /// read-side view, `factor = -1` subtracts an older cumulative snapshot
    /// to materialise a sliding-window table. The update counter adds for
    /// positive factors and subtracts (saturating) for negative ones, so a
    /// snapshot difference reports the window's update count.
    ///
    /// # Panics
    /// Panics when the configurations differ, like [`CountSketch::merge`].
    pub fn merge_scaled(&mut self, other: &Self, factor: f64) {
        assert_eq!(self.rows, other.rows, "row count mismatch in merge");
        assert_eq!(self.range, other.range, "range mismatch in merge");
        assert_eq!(self.seed, other.seed, "seed mismatch in merge");
        for (a, b) in self.table.iter_mut().zip(other.table.iter()) {
            *a += factor * b;
        }
        if factor < 0.0 {
            self.updates = self.updates.saturating_sub(other.updates);
        } else {
            self.updates += other.updates;
        }
    }

    /// Serializes the sketch: nested hash-family record (the geometry and
    /// seed), update counter, then the raw table as IEEE-754 bit patterns.
    pub fn save<W: std::io::Write>(&self, w: &mut W) -> Result<(), CodecError> {
        codec::write_header(w, codec::TAG_COUNT_SKETCH)?;
        self.family.save(w)?;
        codec::write_u64(w, self.updates)?;
        codec::write_u64(w, self.table.len() as u64)?;
        codec::write_f64_slice(w, &self.table)
    }

    /// Restores a sketch saved by [`CountSketch::save`]. Returns a
    /// [`CodecError`] (never panics) on truncated, corrupt or
    /// version-bumped input; the table length must agree with the restored
    /// geometry and stay below [`MAX_TABLE_WORDS`].
    pub fn restore<R: std::io::Read>(r: &mut R) -> Result<Self, CodecError> {
        codec::read_header(r, codec::TAG_COUNT_SKETCH)?;
        let family = HashFamily::restore(r)?;
        let updates = codec::read_u64(r)?;
        let words = codec::read_u64(r)?;
        let expected = (family.rows() as u64)
            .checked_mul(family.range() as u64)
            .filter(|&w| w <= MAX_TABLE_WORDS)
            .ok_or(CodecError::Corrupt("sketch table exceeds the size cap"))?;
        if words != expected {
            return Err(CodecError::Corrupt(
                "table length disagrees with the sketch geometry",
            ));
        }
        let table = codec::read_f64_vec(r, words as usize)?;
        Ok(Self {
            rows: family.rows(),
            range: family.range(),
            seed: family.seed(),
            family,
            table,
            updates,
        })
    }

    /// Restores a checkpointed sketch and merges it into `self` via
    /// linearity. Unlike [`CountSketch::merge`] this is the cross-process
    /// path, so geometry/seed mismatches surface as
    /// [`CodecError::Incompatible`] instead of a panic.
    pub fn merge_from_checkpoint<R: std::io::Read>(&mut self, r: &mut R) -> Result<(), CodecError> {
        let other = Self::restore(r)?;
        self.merge_restored(&other)
    }

    /// Merges an already-restored sketch into `self`, reporting mismatched
    /// geometry or seed as [`CodecError::Incompatible`].
    pub fn merge_restored(&mut self, other: &Self) -> Result<(), CodecError> {
        if self.rows != other.rows {
            return Err(CodecError::Incompatible("row count mismatch in merge"));
        }
        if self.range != other.range {
            return Err(CodecError::Incompatible("range mismatch in merge"));
        }
        if self.seed != other.seed {
            return Err(CodecError::Incompatible("seed mismatch in merge"));
        }
        self.merge(other);
        Ok(())
    }

    /// The L2 norm of one row — a cheap proxy for the total noise energy in
    /// the sketch, used in diagnostics.
    pub fn row_l2(&self, row: usize) -> f64 {
        self.table[row * self.range..(row + 1) * self.range]
            .iter()
            .map(|v| v * v)
            .sum::<f64>()
            .sqrt()
    }
}

impl PointSketch for CountSketch {
    fn update(&mut self, key: u64, weight: f64) {
        CountSketch::update(self, key, weight);
    }
    fn estimate(&self, key: u64) -> f64 {
        CountSketch::estimate(self, key)
    }
    fn memory_words(&self) -> usize {
        self.table.len()
    }
}

/// Median of a small mutable slice (may permute the slice arbitrarily).
///
/// Shared by [`CountSketch::estimate`] and the fused/sharded ingestion
/// paths, which derive post-insert row estimates algebraically and need the
/// *same* median reduction to stay value-identical with a fresh point
/// query.
///
/// The common row counts (`K = 3, 5`) take **branchless** median networks
/// built from `f64::min`/`f64::max` (which compile to `minsd`/`maxsd`):
/// on random row values an insertion sort mispredicts roughly every other
/// compare and costs several times the entire hashing round, so this is
/// one of the larger wins on the per-update path. Other lengths fall back
/// to insertion sort.
#[inline]
pub fn median_in_place(rows: &mut [f64]) -> f64 {
    debug_assert!(!rows.is_empty());
    match rows.len() {
        1 => rows[0],
        3 => median3(rows[0], rows[1], rows[2]),
        5 => {
            // Classic 4-discard network: drop the smallest of the pair
            // minima and the largest of the pair maxima, then take the
            // median of the three survivors.
            let lo = f64::max(f64::min(rows[0], rows[1]), f64::min(rows[2], rows[3]));
            let hi = f64::min(f64::max(rows[0], rows[1]), f64::max(rows[2], rows[3]));
            median3(rows[4], lo, hi)
        }
        _ => {
            for i in 1..rows.len() {
                let mut j = i;
                while j > 0 && rows[j - 1] > rows[j] {
                    rows.swap(j - 1, j);
                    j -= 1;
                }
            }
            let n = rows.len();
            if n % 2 == 1 {
                rows[n / 2]
            } else {
                0.5 * (rows[n / 2 - 1] + rows[n / 2])
            }
        }
    }
}

/// Branchless median of three.
#[inline]
fn median3(x: f64, y: f64, z: f64) -> f64 {
    f64::max(f64::min(x, y), f64::min(f64::max(x, y), z))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn exact_when_items_fit_without_collisions() {
        // More buckets than items and several rows: estimates should be
        // essentially exact.
        let mut cs = CountSketch::new(5, 4096, 1);
        for key in 0..100u64 {
            cs.update(key, key as f64);
        }
        for key in 0..100u64 {
            assert!(
                (cs.estimate(key) - key as f64).abs() < 1e-9,
                "key {key} estimate {}",
                cs.estimate(key)
            );
        }
    }

    #[test]
    fn unqueried_items_estimate_near_zero() {
        let mut cs = CountSketch::new(5, 4096, 2);
        for key in 0..50u64 {
            cs.update(key, 1.0);
        }
        // Keys never inserted should mostly read ~0 (median kills the rare
        // collision).
        let mut nonzero = 0;
        for key in 1000..1100u64 {
            if cs.estimate(key).abs() > 0.5 {
                nonzero += 1;
            }
        }
        assert!(nonzero <= 2, "{nonzero} phantom heavy estimates");
    }

    #[test]
    fn negative_and_fractional_weights_accumulate() {
        let mut cs = CountSketch::new(3, 512, 3);
        cs.update(10, 2.5);
        cs.update(10, -1.0);
        cs.update(10, 0.25);
        assert!((cs.estimate(10) - 1.75).abs() < 1e-9);
    }

    #[test]
    fn heavy_hitter_recovered_under_noise() {
        // One strong signal among many small noise items, sketch heavily
        // compressed: the signal estimate should dominate.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut cs = CountSketch::new(5, 256, 4);
        let signal_key = 123_456u64;
        for t in 0..2000 {
            cs.update(signal_key, 1.0);
            // 50 noise items per step with zero-mean weights.
            for j in 0..50u64 {
                let key = 10_000 + (t * 50 + j) % 5000;
                cs.update(key, rng.gen_range(-0.5..0.5));
            }
        }
        let est = cs.estimate(signal_key);
        assert!(est > 1500.0, "signal estimate too low: {est}");
    }

    #[test]
    fn estimator_is_unbiased_over_seeds() {
        // Average the estimate of a fixed key over many independent sketches:
        // should converge to the true value even with heavy collisions.
        let truth = 10.0;
        let mut sum = 0.0;
        let seeds = 200;
        for seed in 0..seeds {
            let mut cs = CountSketch::new(1, 16, seed);
            cs.update(1, truth);
            for key in 2..50u64 {
                // Symmetric noise items.
                cs.update(key, if key % 2 == 0 { 1.0 } else { -1.0 });
            }
            sum += cs.estimate(1);
        }
        let avg = sum / seeds as f64;
        assert!(
            (avg - truth).abs() < 1.5,
            "mean estimate {avg} deviates from {truth}"
        );
    }

    #[test]
    fn budget_constructor_splits_memory() {
        let cs = CountSketch::with_budget(5, 100_000, 9);
        assert_eq!(cs.rows(), 5);
        assert_eq!(cs.range(), 20_000);
        assert_eq!(cs.memory_words(), 100_000);
    }

    #[test]
    fn merge_matches_sequential_ingestion() {
        let mut whole = CountSketch::new(4, 128, 11);
        let mut part1 = CountSketch::new(4, 128, 11);
        let mut part2 = CountSketch::new(4, 128, 11);
        for key in 0..200u64 {
            let w = (key % 7) as f64 - 3.0;
            whole.update(key, w);
            if key < 100 {
                part1.update(key, w);
            } else {
                part2.update(key, w);
            }
        }
        part1.merge(&part2);
        for key in (0..200u64).step_by(17) {
            assert!((part1.estimate(key) - whole.estimate(key)).abs() < 1e-9);
        }
        assert_eq!(part1.update_count(), whole.update_count());
    }

    #[test]
    #[should_panic(expected = "seed mismatch")]
    fn merge_rejects_different_seeds() {
        let mut a = CountSketch::new(2, 64, 1);
        let b = CountSketch::new(2, 64, 2);
        a.merge(&b);
    }

    #[test]
    fn clear_resets_estimates() {
        let mut cs = CountSketch::new(3, 64, 5);
        cs.update(42, 10.0);
        cs.clear();
        assert_eq!(cs.estimate(42), 0.0);
        assert_eq!(cs.update_count(), 0);
    }

    #[test]
    fn row_estimate_feeds_median() {
        let mut cs = CountSketch::new(5, 1024, 6);
        cs.update(77, 4.0);
        let mut rows: Vec<f64> = (0..5).map(|r| cs.row_estimate(r, 77)).collect();
        rows.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(cs.estimate(77), rows[2]);
    }

    #[test]
    fn single_row_single_bucket_degenerate_case() {
        let mut cs = CountSketch::new(1, 1, 0);
        cs.update(1, 1.0);
        cs.update(2, 1.0);
        // Everything lands in the same bucket; estimate is the signed sum.
        let est = cs.estimate(1).abs();
        assert!(est <= 2.0 + 1e-12);
    }

    #[test]
    fn memory_words_matches_table_size() {
        let cs = CountSketch::new(7, 33, 8);
        assert_eq!(cs.memory_words(), 7 * 33);
    }

    #[test]
    fn fused_location_apis_match_keyed_apis_bit_for_bit() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut keyed = CountSketch::new(5, 257, 17);
        let mut fused = CountSketch::new(5, 257, 17);
        for _ in 0..2000 {
            let key = rng.gen::<u64>() % 400;
            let w = rng.gen_range(-2.0..2.0);
            keyed.update(key, w);
            let locs = fused.locate(key);
            fused.update_at(&locs, w);
            assert_eq!(
                keyed.estimate(key).to_bits(),
                fused.estimate_at(&locs).to_bits(),
                "fused estimate diverged for key {key}"
            );
        }
        assert_eq!(keyed.table(), fused.table());
        assert_eq!(keyed.update_count(), fused.update_count());
    }

    #[test]
    fn row_values_at_exposes_the_median_inputs() {
        let mut cs = CountSketch::new(5, 64, 3);
        for key in 0..200u64 {
            cs.update(key, (key % 5) as f64 - 2.0);
        }
        let locs = cs.locate(42);
        let mut buf = [0.0f64; ascs_sketch_hash::MAX_ROWS];
        let n = cs.row_values_at(&locs, &mut buf);
        assert_eq!(n, 5);
        for (row, value) in buf[..n].iter().enumerate() {
            assert_eq!(*value, cs.row_estimate(row, 42));
            assert_eq!(
                cs.raw_bucket(row, locs.bucket(row)) * locs.sign(row),
                *value
            );
        }
        let mut sorted = buf;
        assert_eq!(median_in_place(&mut sorted[..n]), cs.estimate(42));
    }

    #[test]
    fn planned_apis_match_keyed_apis_bit_for_bit() {
        let mut rng = ChaCha8Rng::seed_from_u64(123);
        let mut keyed = CountSketch::new(5, 257, 17);
        let mut planned = CountSketch::new(5, 257, 17);
        let plan = planned.build_plan(400);
        planned.verify_plan(&plan);
        for _ in 0..2000 {
            let slot = (rng.gen::<u64>() % 400) as usize;
            let w = rng.gen_range(-2.0..2.0);
            keyed.update(slot as u64, w);
            planned.prefetch_planned(&plan, slot);
            planned.update_planned(&plan, slot, w);
            assert_eq!(
                keyed.estimate(slot as u64).to_bits(),
                planned.estimate_planned(&plan, slot).to_bits(),
                "planned estimate diverged for slot {slot}"
            );
        }
        assert_eq!(keyed.table(), planned.table());
        assert_eq!(keyed.update_count(), planned.update_count());

        let mut buf_at = [0.0f64; ascs_sketch_hash::MAX_ROWS];
        let mut buf_plan = [0.0f64; ascs_sketch_hash::MAX_ROWS];
        let locs = planned.locate(42);
        let n = planned.row_values_at(&locs, &mut buf_at);
        assert_eq!(planned.row_values_planned(&plan, 42, &mut buf_plan), n);
        assert_eq!(buf_at, buf_plan);
    }

    #[test]
    fn estimate_many_is_bit_identical_to_point_queries() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        // A block boundary inside the slot range and keys beyond the
        // inserted set (estimating ~0) both get covered.
        let slots = 3000usize;
        let mut cs = CountSketch::new(5, 512, 29);
        for _ in 0..20_000 {
            cs.update(rng.gen::<u64>() % 1500, rng.gen_range(-1.0..1.0));
        }
        let plan = cs.build_plan(slots);
        let mut swept = Vec::new();
        cs.estimate_many(&plan, &mut swept);
        assert_eq!(swept.len(), slots);
        for (slot, &est) in swept.iter().enumerate() {
            assert_eq!(
                est.to_bits(),
                cs.estimate(slot as u64).to_bits(),
                "sweep diverged at slot {slot}"
            );
        }
        // Reuse of the output vector clears stale contents.
        cs.estimate_many(&plan, &mut swept);
        assert_eq!(swept.len(), slots);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn planned_point_query_rejects_oversized_row_counts() {
        // 17-32 rows are legal for the sketch (estimate() has a Vec
        // fallback) and for the plan arena, but the stack-buffer planned
        // point query must refuse them rather than read a truncated buffer.
        let cs = CountSketch::new(MAX_ROWS + 1, 64, 1);
        let plan = cs.build_plan(4);
        let _ = cs.estimate_planned(&plan, 0);
    }

    #[test]
    fn estimate_many_handles_rows_beyond_the_stack_cap() {
        // The blocked sweep uses heap buffers, so it is the supported
        // whole-universe query path for oversized row counts.
        let mut cs = CountSketch::new(MAX_ROWS + 1, 64, 1);
        for key in 0..32u64 {
            cs.update(key, key as f64);
        }
        let plan = cs.build_plan(32);
        let mut out = Vec::new();
        cs.estimate_many(&plan, &mut out);
        for (slot, &est) in out.iter().enumerate() {
            assert_eq!(est.to_bits(), cs.estimate(slot as u64).to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "does not match this sketch")]
    fn foreign_plan_is_rejected() {
        let cs = CountSketch::new(5, 64, 1);
        let other = CountSketch::new(5, 64, 2);
        let plan = other.build_plan(16);
        let mut out = Vec::new();
        cs.estimate_many(&plan, &mut out);
    }

    #[test]
    fn row_l2_tracks_inserted_energy() {
        let mut cs = CountSketch::new(2, 128, 13);
        assert_eq!(cs.row_l2(0), 0.0);
        cs.update(5, 3.0);
        assert!((cs.row_l2(0) - 3.0).abs() < 1e-12);
        assert!((cs.row_l2(1) - 3.0).abs() < 1e-12);
    }
}
