//! Count-sketch family of streaming summaries.
//!
//! This crate provides the sketching substrate of the ASCS reproduction:
//!
//! * [`CountSketch`] — the classic Charikar–Chen–Farach-Colton sketch with
//!   `K` rows of `R` signed buckets and median-of-rows retrieval. This is
//!   the structure both vanilla CS (Algorithm 1 of the paper) and ASCS
//!   (Algorithm 2) write into; ASCS differs only in *which* updates are
//!   inserted.
//! * [`CountMinSketch`] — a non-negative counterpart used by the Cold
//!   Filter baseline's first stage and available for ablations.
//! * [`AugmentedSketch`] — the ASketch baseline of Roy et al. (SIGMOD '16):
//!   a small exact filter for hot items in front of a count sketch.
//! * [`ColdFilter`] — the Zhou et al. (SIGMOD '18) meta-framework: a cheap
//!   two-layer filter absorbs cold items and forwards hot ones to the main
//!   sketch.
//! * [`TopKTracker`] — a bounded tracker of the largest estimates, used to
//!   report the top correlation pairs without a second pass over the item
//!   universe.
//!
//! All structures are generic over `u64` item identifiers (the ASCS core
//! maps covariance pairs `(a, b)` to such identifiers) and real-valued
//! increments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asketch;
pub mod cold_filter;
pub mod count_min;
pub mod count_sketch;
pub mod topk;

pub use asketch::AugmentedSketch;
pub use cold_filter::ColdFilter;
pub use count_min::CountMinSketch;
pub use count_sketch::{median_in_place, CountSketch};
pub use topk::TopKTracker;

// Re-exported so sketch consumers can use the fused location APIs, the
// precomputed hash plans and the checkpoint codec without depending on the
// hash crate directly.
pub use ascs_sketch_hash::codec;
pub use ascs_sketch_hash::{CodecError, HashPlan, RowLocations, MAX_ROWS};

/// Common interface of sketches that ingest `(item, weight)` updates and
/// answer point queries, letting the evaluation harness treat CS, ASketch
/// and Cold Filter uniformly.
pub trait PointSketch {
    /// Adds `weight` to item `key`.
    fn update(&mut self, key: u64, weight: f64);

    /// Estimates the accumulated weight of item `key`.
    fn estimate(&self, key: u64) -> f64;

    /// Number of 64-bit words of state the sketch owns (memory footprint in
    /// float-equivalents, the unit the paper's Table 5 budgets use).
    fn memory_words(&self) -> usize;
}
