//! Bounded tracking of the items with the largest estimates.
//!
//! After one pass over the stream, the paper reports the "top 1000
//! correlation pairs" (Table 2) or the top `f · α · p` pairs (Table 4). For
//! small universes the evaluation layer can simply query every pair at the
//! end, but at trillion scale that second enumeration is impossible, so the
//! tracker below maintains the current top set online: every time a pair is
//! touched its fresh estimate is offered to the tracker, which keeps the
//! `capacity` largest values seen.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

use ascs_sketch_hash::codec::{self, CodecError};

/// Largest tracker capacity accepted on restore; legitimate trackers hold
/// thousands of pairs, so anything beyond this is a corrupt length field.
const MAX_TRACKER_CAPACITY: u64 = 1 << 28;

/// Restore pre-allocates the entry map only up to this many slots; longer
/// (validated) entry lists grow the map incrementally, so a corrupt length
/// cannot force a giant allocation before the payload bytes run out.
const MAX_TRACKER_PREALLOC: usize = 1 << 20;

/// Ranking wrapper giving `(estimate, key)` the tracker's reporting order:
/// larger estimates first, ties broken by **smaller** key — so the *larger*
/// `Rank` is the entry reported earlier. `total_cmp` makes the order total
/// (the tracker never stores NaN, but the type must not rely on that).
#[derive(Debug, Clone, Copy)]
struct Rank(f64, u64);

/// Equality must agree with `Ord` (`total_cmp` distinguishes `-0.0` from
/// `0.0` and is reflexive for NaN, which derived `f64 ==` is not), so it is
/// defined through `cmp` rather than derived.
impl PartialEq for Rank {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Rank {}

impl PartialOrd for Rank {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rank {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then(other.1.cmp(&self.1))
    }
}

/// A minimal `u64` hasher (one splitmix64 round) for the tracker map.
///
/// The tracker sits on the ingestion hot path — every accepted update pays
/// at least one map probe — and its keys are already well-distributed pair
/// indices, so the default SipHash's HashDoS resistance buys nothing here
/// and costs a measurable slice of the per-update budget.
#[derive(Debug, Clone, Copy, Default)]
pub struct KeyHasher {
    state: u64,
}

impl Hasher for KeyHasher {
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.state = ascs_sketch_hash::splitmix64(n);
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (unused by the u64-keyed map, kept for trait
        // completeness): FNV-1a folded through splitmix.
        let mut acc = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            acc = (acc ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.state = ascs_sketch_hash::splitmix64(acc);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }
}

/// A bounded map from item to its latest offered estimate, retaining only
/// the `capacity` items with the largest estimates.
///
/// Offers are idempotent per item (a newer offer replaces the older value),
/// so repeatedly offering the same heavy pair does not crowd out others.
///
/// ```
/// use ascs_count_sketch::TopKTracker;
/// let mut t = TopKTracker::new(2);
/// t.offer(1, 0.5);
/// t.offer(2, 0.9);
/// t.offer(3, 0.1); // evicts nothing yet? capacity 2 -> evicts the smallest
/// let top = t.descending();
/// assert_eq!(top.len(), 2);
/// assert_eq!(top[0].0, 2);
/// ```
#[derive(Debug, Clone)]
pub struct TopKTracker {
    capacity: usize,
    entries: HashMap<u64, f64, BuildHasherDefault<KeyHasher>>,
    /// Admission bar: the smallest retained value observed at the last
    /// eviction. Offers for *new* keys below this bar are rejected without
    /// touching the map, which keeps the per-offer cost O(1) on the hot
    /// ingestion path (the bar is a lower bound on what could survive, so
    /// the retained top set is unaffected for the monotone-growing
    /// estimates the sketches produce).
    admission_bar: f64,
    offers: u64,
}

impl TopKTracker {
    /// Creates a tracker retaining at most `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "top-k tracker needs positive capacity");
        Self {
            capacity,
            entries: HashMap::with_capacity_and_hasher(capacity + 1, Default::default()),
            admission_bar: f64::NEG_INFINITY,
            offers: 0,
        }
    }

    /// Maximum number of retained items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of items currently retained.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been offered yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of offers received.
    pub fn offers(&self) -> u64 {
        self.offers
    }

    /// Offers `(key, estimate)`. If the key is already tracked its estimate
    /// is updated; otherwise it is inserted and, when over capacity, the
    /// smallest-estimate item is evicted.
    pub fn offer(&mut self, key: u64, estimate: f64) {
        self.offers += 1;
        if estimate.is_nan() {
            return;
        }
        // Fast path: the tracker is full, the key is new, and the estimate
        // cannot beat what is already retained.
        if self.entries.len() >= self.capacity
            && estimate < self.admission_bar
            && !self.entries.contains_key(&key)
        {
            return;
        }
        self.entries.insert(key, estimate);
        if self.entries.len() > self.capacity {
            // Evict the current minimum. The linear scan only runs when an
            // offer actually clears the admission bar.
            if let Some((&evict_key, _)) = self.entries.iter().min_by(|a, b| a.1.total_cmp(b.1)) {
                self.entries.remove(&evict_key);
            }
            // The new minimum becomes the admission bar for future offers.
            self.admission_bar = self.entries.values().copied().fold(f64::INFINITY, f64::min);
        }
    }

    /// Current estimate for `key`, if tracked.
    pub fn get(&self, key: u64) -> Option<f64> {
        self.entries.get(&key).copied()
    }

    /// Retained `(key, estimate)` pairs sorted by estimate descending.
    pub fn descending(&self) -> Vec<(u64, f64)> {
        self.top_descending(self.entries.len())
    }

    /// The `k` largest retained `(key, estimate)` pairs, estimate
    /// descending, ties broken by key ascending.
    ///
    /// When `k` is smaller than the retained set this is a **partial
    /// selection**: a bounded min-heap of size `k` is threaded over the
    /// entries (`O(n log k)`), then only the `k` survivors are sorted —
    /// reporting callers routinely ask for a handful of pairs out of a
    /// tracker holding thousands, where fully sorting the retained set just
    /// to discard most of it dominated the reporting cost.
    pub fn top_descending(&self, k: usize) -> Vec<(u64, f64)> {
        let k = k.min(self.entries.len());
        if k == 0 {
            return Vec::new();
        }
        if k == self.entries.len() {
            let mut v: Vec<(u64, f64)> = self.entries.iter().map(|(k, v)| (*k, *v)).collect();
            v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            return v;
        }
        // Min-heap of the k best seen so far: the root is the weakest
        // survivor, evicted whenever a stronger entry arrives.
        let mut heap: BinaryHeap<Reverse<Rank>> = BinaryHeap::with_capacity(k + 1);
        for (&key, &est) in &self.entries {
            let rank = Rank(est, key);
            if heap.len() < k {
                heap.push(Reverse(rank));
            } else if rank > heap.peek().expect("heap is non-empty").0 {
                heap.pop();
                heap.push(Reverse(rank));
            }
        }
        let mut v: Vec<(u64, f64)> = heap
            .into_iter()
            .map(|Reverse(Rank(est, key))| (key, est))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Consumes the tracker and returns its `k` largest entries, estimate
    /// descending with the deterministic key tie-break — the one-shot form
    /// of [`TopKTracker::top_descending`] for end-of-stream reporting.
    pub fn into_sorted_vec(self, k: usize) -> Vec<(u64, f64)> {
        self.top_descending(k)
    }

    /// Just the keys, largest estimate first.
    pub fn keys_descending(&self) -> Vec<u64> {
        self.descending().into_iter().map(|(k, _)| k).collect()
    }

    /// Smallest retained estimate (the current admission bar once full).
    pub fn threshold(&self) -> Option<f64> {
        self.entries.values().copied().min_by(f64::total_cmp)
    }

    /// Serializes the tracker: capacity, admission bar (bit pattern, may be
    /// ±inf), offer counter, then the retained entries sorted by key — the
    /// sort makes the byte stream canonical, so identical tracker states
    /// always produce identical checkpoints regardless of map history.
    pub fn save<W: std::io::Write>(&self, w: &mut W) -> Result<(), CodecError> {
        codec::write_header(w, codec::TAG_TOP_K_TRACKER)?;
        codec::write_u64(w, self.capacity as u64)?;
        codec::write_f64(w, self.admission_bar)?;
        codec::write_u64(w, self.offers)?;
        codec::write_u64(w, self.entries.len() as u64)?;
        let mut entries: Vec<(u64, f64)> = self.entries.iter().map(|(k, v)| (*k, *v)).collect();
        entries.sort_unstable_by_key(|&(key, _)| key);
        for (key, value) in entries {
            codec::write_u64(w, key)?;
            codec::write_f64(w, value)?;
        }
        Ok(())
    }

    /// Restores a tracker saved by [`TopKTracker::save`]. Keys must be
    /// strictly ascending and values non-NaN (`offer` never stores NaN),
    /// otherwise the record is reported as [`CodecError::Corrupt`].
    pub fn restore<R: std::io::Read>(r: &mut R) -> Result<Self, CodecError> {
        codec::read_header(r, codec::TAG_TOP_K_TRACKER)?;
        let capacity = codec::read_len(r, MAX_TRACKER_CAPACITY, "tracker capacity out of range")?;
        if capacity == 0 {
            return Err(CodecError::Corrupt("tracker capacity out of range"));
        }
        let admission_bar = codec::read_f64(r)?;
        if admission_bar.is_nan() {
            return Err(CodecError::Corrupt("tracker admission bar is NaN"));
        }
        let offers = codec::read_u64(r)?;
        let len = codec::read_len(r, capacity as u64, "tracker holds more than its capacity")?;
        let mut entries = HashMap::with_capacity_and_hasher(
            len.min(MAX_TRACKER_PREALLOC) + 1,
            BuildHasherDefault::default(),
        );
        let mut previous: Option<u64> = None;
        for _ in 0..len {
            let key = codec::read_u64(r)?;
            if previous.is_some_and(|p| p >= key) {
                return Err(CodecError::Corrupt("tracker keys not strictly ascending"));
            }
            previous = Some(key);
            let value = codec::read_f64(r)?;
            if value.is_nan() {
                return Err(CodecError::Corrupt("tracker entry value is NaN"));
            }
            entries.insert(key, value);
        }
        Ok(Self {
            capacity,
            entries,
            admission_bar,
            offers,
        })
    }

    /// Rebuilds a tracker from externally re-scored entries — the
    /// cross-checkpoint merge path, where the union of two trackers' keys
    /// is re-scored against the merged sketch and the best `capacity`
    /// survive. NaN scores are dropped (as `offer` would drop them),
    /// duplicates keep their best score, and the admission bar re-arms at
    /// the next real eviction.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn from_rescored(capacity: usize, offers: u64, mut scored: Vec<(u64, f64)>) -> Self {
        assert!(capacity > 0, "top-k tracker needs positive capacity");
        scored.retain(|&(_, value)| !value.is_nan());
        scored.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut entries = HashMap::with_capacity_and_hasher(
            capacity.min(MAX_TRACKER_PREALLOC) + 1,
            BuildHasherDefault::default(),
        );
        for (key, value) in scored {
            if entries.len() == capacity {
                break;
            }
            entries.entry(key).or_insert(value);
        }
        Self {
            capacity,
            entries,
            admission_bar: f64::NEG_INFINITY,
            offers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_largest_items() {
        let mut t = TopKTracker::new(3);
        for (k, v) in [(1, 0.1), (2, 0.9), (3, 0.5), (4, 0.7), (5, 0.2)] {
            t.offer(k, v);
        }
        let keys = t.keys_descending();
        assert_eq!(keys, vec![2, 4, 3]);
    }

    #[test]
    fn re_offering_updates_in_place() {
        let mut t = TopKTracker::new(2);
        t.offer(1, 0.1);
        t.offer(2, 0.2);
        t.offer(1, 0.9); // key 1 grows, must not duplicate
        assert_eq!(t.len(), 2);
        assert_eq!(t.keys_descending(), vec![1, 2]);
        assert_eq!(t.get(1), Some(0.9));
    }

    #[test]
    fn eviction_removes_current_minimum() {
        let mut t = TopKTracker::new(2);
        t.offer(10, 5.0);
        t.offer(20, 1.0);
        t.offer(30, 3.0); // evicts 20
        assert_eq!(t.get(20), None);
        assert!(t.get(10).is_some() && t.get(30).is_some());
    }

    #[test]
    fn threshold_is_smallest_retained() {
        let mut t = TopKTracker::new(3);
        assert_eq!(t.threshold(), None);
        t.offer(1, 0.4);
        t.offer(2, 0.6);
        assert_eq!(t.threshold(), Some(0.4));
    }

    #[test]
    fn nan_offers_are_ignored() {
        let mut t = TopKTracker::new(2);
        t.offer(1, f64::NAN);
        assert!(t.is_empty());
        assert_eq!(t.offers(), 1);
    }

    #[test]
    fn descending_breaks_ties_by_key() {
        let mut t = TopKTracker::new(4);
        t.offer(7, 1.0);
        t.offer(3, 1.0);
        t.offer(5, 1.0);
        let d = t.descending();
        assert_eq!(d.iter().map(|(k, _)| *k).collect::<Vec<_>>(), vec![3, 5, 7]);
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn zero_capacity_panics() {
        let _ = TopKTracker::new(0);
    }

    #[test]
    fn partial_selection_matches_full_sort() {
        // The heap-select path (k < len) must return exactly the prefix the
        // full sort produces, including the key tie-break, for every k.
        let mut t = TopKTracker::new(64);
        for i in 0..64u64 {
            t.offer(i, (i % 7) as f64); // many ties
        }
        let full = t.descending();
        for k in 0..=full.len() + 3 {
            assert_eq!(
                t.top_descending(k),
                full[..k.min(full.len())].to_vec(),
                "selection diverged at k = {k}"
            );
        }
        assert_eq!(t.clone().into_sorted_vec(5), full[..5].to_vec());
        assert_eq!(t.into_sorted_vec(1000), full);
    }

    #[test]
    fn k_zero_and_k_beyond_retained_return_cleanly() {
        let mut t = TopKTracker::new(4);
        assert!(t.top_descending(0).is_empty());
        assert!(t.top_descending(10).is_empty());
        t.offer(3, 0.5);
        t.offer(1, 0.9);
        // k = 0 on a non-empty tracker.
        assert!(t.top_descending(0).is_empty());
        // k exceeding the retained set clamps to everything, in order.
        let all = t.top_descending(1000);
        assert_eq!(all, vec![(1, 0.9), (3, 0.5)]);
        assert_eq!(all, t.descending());
        // k exceeding even the capacity.
        assert_eq!(t.clone().into_sorted_vec(usize::MAX), all);
        assert!(t.clone().into_sorted_vec(0).is_empty());
    }

    /// The estimate-desc / key-asc tie-break must hold exactly at the
    /// selection boundary: when the k-th and (k+1)-th entries tie on the
    /// estimate, the *smaller key* survives, on both the full-sort path
    /// (k == len) and the heap-select path (k < len).
    #[test]
    fn tie_break_at_the_selection_boundary_prefers_smaller_keys() {
        let mut t = TopKTracker::new(8);
        for key in [50, 40, 30, 20, 10] {
            t.offer(key, 1.0); // five-way tie
        }
        t.offer(5, 2.0); // clear winner
        for k in 1..=6 {
            let got = t.top_descending(k);
            let keys: Vec<u64> = got.iter().map(|(key, _)| *key).collect();
            let mut expect = vec![5u64, 10, 20, 30, 40, 50];
            expect.truncate(k);
            assert_eq!(keys, expect, "tie-break violated at k = {k}");
        }
    }

    #[test]
    fn stress_capacity_is_respected() {
        let mut t = TopKTracker::new(100);
        for i in 0..10_000u64 {
            t.offer(i, (i % 997) as f64);
        }
        assert_eq!(t.len(), 100);
        // The retained minimum must be among the largest residues.
        assert!(t.threshold().unwrap() >= 900.0);
    }
}
