//! Fixed-width histograms.
//!
//! Figure 3 of the paper is a histogram of the absolute cross-correlations
//! between empirical covariance entries (the independence-assumption check).
//! [`Histogram`] provides the uniform-bin counting used there and by the
//! dataset-statistics binaries.

use serde::{Deserialize, Serialize};

/// A histogram with uniformly spaced bins over `[lo, hi)`.
///
/// Values below `lo` are clamped into the first bin and values at or above
/// `hi` into the last bin, so the total count always equals the number of
/// observations pushed (NaNs excepted — they are dropped and counted
/// separately).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    dropped_nan: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` uniform bins.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-degenerate");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            dropped_nan: 0,
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Total number of (non-NaN) observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of NaN observations that were dropped.
    pub fn dropped_nan(&self) -> u64 {
        self.dropped_nan
    }

    /// Index of the bin a value falls into (after clamping).
    fn bin_index(&self, x: f64) -> usize {
        let n = self.counts.len();
        if x <= self.lo {
            return 0;
        }
        if x >= self.hi {
            return n - 1;
        }
        let w = (self.hi - self.lo) / n as f64;
        (((x - self.lo) / w) as usize).min(n - 1)
    }

    /// Records one observation.
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            self.dropped_nan += 1;
            return;
        }
        let idx = self.bin_index(x);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Records every value of an iterator.
    pub fn extend(&mut self, values: impl IntoIterator<Item = f64>) {
        for v in values {
            self.push(v);
        }
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Bin centres, aligned with [`counts`](Self::counts).
    pub fn centres(&self) -> Vec<f64> {
        let n = self.counts.len();
        let w = (self.hi - self.lo) / n as f64;
        (0..n).map(|i| self.lo + w * (i as f64 + 0.5)).collect()
    }

    /// Normalised bin frequencies (each count divided by the total); all
    /// zeros when nothing was recorded.
    pub fn frequencies(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Fraction of recorded observations falling at or below `x`
    /// (bin-resolution approximation of the CDF).
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let idx = self.bin_index(x);
        let below: u64 = self.counts[..=idx].iter().sum();
        below as f64 / self.total as f64
    }

    /// `(centre, count)` pairs, convenient for serialisation.
    pub fn to_pairs(&self) -> Vec<(f64, u64)> {
        self.centres()
            .into_iter()
            .zip(self.counts.iter().copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_land_in_expected_bins() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(0.1); // bin 0
        h.push(0.3); // bin 1
        h.push(0.6); // bin 2
        h.push(0.9); // bin 3
        assert_eq!(h.counts(), &[1, 1, 1, 1]);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn out_of_range_values_are_clamped() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.push(-5.0);
        h.push(7.0);
        h.push(1.0); // hi itself goes to last bin
        assert_eq!(h.counts(), &[1, 2]);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn nan_is_dropped_not_counted() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.push(f64::NAN);
        h.push(0.5);
        assert_eq!(h.total(), 1);
        assert_eq!(h.dropped_nan(), 1);
    }

    #[test]
    fn frequencies_sum_to_one() {
        let mut h = Histogram::new(-1.0, 1.0, 10);
        h.extend((0..100).map(|i| (i as f64 / 50.0) - 1.0));
        let sum: f64 = h.frequencies().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_has_zero_frequencies() {
        let h = Histogram::new(0.0, 1.0, 3);
        assert_eq!(h.frequencies(), vec![0.0, 0.0, 0.0]);
        assert_eq!(h.fraction_below(0.5), 0.0);
    }

    #[test]
    fn centres_are_uniformly_spaced() {
        let h = Histogram::new(0.0, 1.0, 4);
        let c = h.centres();
        assert_eq!(c.len(), 4);
        assert!((c[0] - 0.125).abs() < 1e-12);
        assert!((c[3] - 0.875).abs() < 1e-12);
    }

    #[test]
    fn fraction_below_is_monotone() {
        let mut h = Histogram::new(0.0, 10.0, 20);
        h.extend((0..1000).map(|i| (i % 10) as f64 + 0.5));
        let mut prev = 0.0;
        for i in 0..=10 {
            let f = h.fraction_below(i as f64);
            assert!(f >= prev);
            prev = f;
        }
        assert!((h.fraction_below(10.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "non-degenerate")]
    fn degenerate_range_panics() {
        let _ = Histogram::new(1.0, 1.0, 3);
    }

    #[test]
    fn to_pairs_aligns_centres_and_counts() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.push(0.5);
        h.push(1.5);
        h.push(1.6);
        let pairs = h.to_pairs();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].1, 1);
        assert_eq!(pairs[1].1, 2);
    }
}
