//! Single-pass (online) estimation of means, variances and covariances.
//!
//! The streaming setting of the ASCS paper forbids a second pass over the
//! data, so every moment the algorithm needs — per-feature means and
//! standard deviations for the correlation normalisation of eq. (2), and the
//! average variance `σ²` used by the hyperparameter solver — must be
//! maintained incrementally. [`RunningMoments`] implements Welford's
//! numerically stable update; [`RunningCovariance`] extends it to a pair of
//! variables.

use serde::{Deserialize, Serialize};

/// Numerically stable running mean / variance accumulator (Welford).
///
/// ```
/// use ascs_numerics::RunningMoments;
/// let mut m = RunningMoments::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     m.push(x);
/// }
/// assert_eq!(m.count(), 8);
/// assert!((m.mean() - 5.0).abs() < 1e-12);
/// assert!((m.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningMoments {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningMoments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of observations pushed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by `n`); 0 when fewer than one sample.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n - 1`); 0 when fewer than two samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation seen (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation seen (`-∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford / Chan).
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Decomposes the accumulator into `(count, mean, m2, min, max)` — the
    /// exact internal state, exposed so checkpoint codecs can serialize a
    /// moment accumulator and rebuild it bit-identically.
    pub fn to_raw_parts(&self) -> (u64, f64, f64, f64, f64) {
        (self.count, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuilds an accumulator from parts produced by
    /// [`RunningMoments::to_raw_parts`]. No validation is performed beyond
    /// the type system; callers restoring untrusted bytes should validate
    /// the fields themselves.
    pub fn from_raw_parts(count: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        Self {
            count,
            mean,
            m2,
            min,
            max,
        }
    }
}

/// Running covariance between two jointly observed variables.
///
/// Each call to [`RunningCovariance::push`] consumes one paired observation
/// `(x, y)`. The accumulator keeps the cross second moment in the same
/// numerically stable form Welford uses for the variance.
///
/// ```
/// use ascs_numerics::RunningCovariance;
/// let mut c = RunningCovariance::new();
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// let ys = [2.0, 4.0, 6.0, 8.0]; // y = 2x, perfectly correlated
/// for (x, y) in xs.iter().zip(ys.iter()) {
///     c.push(*x, *y);
/// }
/// assert!((c.correlation() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningCovariance {
    count: u64,
    mean_x: f64,
    mean_y: f64,
    m2_x: f64,
    m2_y: f64,
    c2: f64,
}

impl RunningCovariance {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one paired observation.
    #[inline]
    pub fn push(&mut self, x: f64, y: f64) {
        self.count += 1;
        let n = self.count as f64;
        let dx = x - self.mean_x;
        let dy = y - self.mean_y;
        self.mean_x += dx / n;
        self.mean_y += dy / n;
        // dx uses the *old* mean_x, (y - mean_y) uses the *new* mean_y; that
        // combination keeps E[c2] exactly n * Cov.
        self.c2 += dx * (y - self.mean_y);
        self.m2_x += dx * (x - self.mean_x);
        self.m2_y += dy * (y - self.mean_y);
    }

    /// Number of paired observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the first variable.
    pub fn mean_x(&self) -> f64 {
        self.mean_x
    }

    /// Mean of the second variable.
    pub fn mean_y(&self) -> f64 {
        self.mean_y
    }

    /// Population covariance (divides by `n`).
    pub fn population_covariance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.c2 / self.count as f64
        }
    }

    /// Sample covariance (divides by `n - 1`).
    pub fn sample_covariance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.c2 / (self.count - 1) as f64
        }
    }

    /// Pearson correlation coefficient; 0 when either variance is 0.
    pub fn correlation(&self) -> f64 {
        let denom = (self.m2_x * self.m2_y).sqrt();
        if denom == 0.0 {
            0.0
        } else {
            self.c2 / denom
        }
    }

    /// Merges another accumulator (parallel combination).
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let total = n1 + n2;
        let dx = other.mean_x - self.mean_x;
        let dy = other.mean_y - self.mean_y;
        self.c2 += other.c2 + dx * dy * n1 * n2 / total;
        self.m2_x += other.m2_x + dx * dx * n1 * n2 / total;
        self.m2_y += other.m2_y + dy * dy * n1 * n2 / total;
        self.mean_x += dx * n2 / total;
        self.mean_y += dy * n2 / total;
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_pass_mean_var(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn matches_two_pass_computation() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| ((i * 37 % 101) as f64).sin() * 5.0)
            .collect();
        let mut m = RunningMoments::new();
        for &x in &xs {
            m.push(x);
        }
        let (mean, var) = two_pass_mean_var(&xs);
        assert!((m.mean() - mean).abs() < 1e-10);
        assert!((m.population_variance() - var).abs() < 1e-10);
    }

    #[test]
    fn empty_accumulator_is_safe() {
        let m = RunningMoments::new();
        assert_eq!(m.count(), 0);
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.population_variance(), 0.0);
        assert_eq!(m.sample_variance(), 0.0);
        assert_eq!(m.min(), f64::INFINITY);
        assert_eq!(m.max(), f64::NEG_INFINITY);
    }

    #[test]
    fn single_observation() {
        let mut m = RunningMoments::new();
        m.push(42.0);
        assert_eq!(m.mean(), 42.0);
        assert_eq!(m.population_variance(), 0.0);
        assert_eq!(m.sample_variance(), 0.0);
        assert_eq!(m.min(), 42.0);
        assert_eq!(m.max(), 42.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..500)
            .map(|i| (i as f64 * 0.37).cos() * 3.0 + 1.0)
            .collect();
        let mut whole = RunningMoments::new();
        for &x in &xs {
            whole.push(x);
        }
        let (a, b) = xs.split_at(200);
        let mut m1 = RunningMoments::new();
        let mut m2 = RunningMoments::new();
        for &x in a {
            m1.push(x);
        }
        for &x in b {
            m2.push(x);
        }
        m1.merge(&m2);
        assert_eq!(m1.count(), whole.count());
        assert!((m1.mean() - whole.mean()).abs() < 1e-12);
        assert!((m1.population_variance() - whole.population_variance()).abs() < 1e-12);
        assert_eq!(m1.min(), whole.min());
        assert_eq!(m1.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut m = RunningMoments::new();
        m.push(1.0);
        m.push(2.0);
        let before = m;
        m.merge(&RunningMoments::new());
        assert_eq!(m, before);

        let mut empty = RunningMoments::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn covariance_matches_two_pass() {
        let xs: Vec<f64> = (0..800).map(|i| (i as f64 * 0.113).sin()).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 0.5 * x + (i as f64 * 0.071).cos())
            .collect();
        let mut c = RunningCovariance::new();
        for (x, y) in xs.iter().zip(ys.iter()) {
            c.push(*x, *y);
        }
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let cov = xs
            .iter()
            .zip(ys.iter())
            .map(|(x, y)| (x - mx) * (y - my))
            .sum::<f64>()
            / n;
        assert!((c.population_covariance() - cov).abs() < 1e-10);
        assert!((c.mean_x() - mx).abs() < 1e-12);
        assert!((c.mean_y() - my).abs() < 1e-12);
    }

    #[test]
    fn correlation_bounds_and_signs() {
        let mut pos = RunningCovariance::new();
        let mut neg = RunningCovariance::new();
        for i in 0..100 {
            let x = i as f64;
            pos.push(x, 3.0 * x + 1.0);
            neg.push(x, -2.0 * x + 5.0);
        }
        assert!((pos.correlation() - 1.0).abs() < 1e-10);
        assert!((neg.correlation() + 1.0).abs() < 1e-10);
    }

    #[test]
    fn zero_variance_correlation_is_zero() {
        let mut c = RunningCovariance::new();
        for i in 0..10 {
            c.push(5.0, i as f64);
        }
        assert_eq!(c.correlation(), 0.0);
    }

    #[test]
    fn covariance_merge_equals_sequential() {
        let pairs: Vec<(f64, f64)> = (0..300)
            .map(|i| ((i as f64 * 0.17).sin(), (i as f64 * 0.29).cos()))
            .collect();
        let mut whole = RunningCovariance::new();
        for &(x, y) in &pairs {
            whole.push(x, y);
        }
        let (a, b) = pairs.split_at(137);
        let mut c1 = RunningCovariance::new();
        let mut c2 = RunningCovariance::new();
        for &(x, y) in a {
            c1.push(x, y);
        }
        for &(x, y) in b {
            c2.push(x, y);
        }
        c1.merge(&c2);
        assert!((c1.population_covariance() - whole.population_covariance()).abs() < 1e-12);
        assert!((c1.correlation() - whole.correlation()).abs() < 1e-12);
    }

    #[test]
    fn running_moments_shift_invariance_of_variance() {
        let xs: Vec<f64> = (0..256).map(|i| (i % 17) as f64).collect();
        let mut a = RunningMoments::new();
        let mut b = RunningMoments::new();
        for &x in &xs {
            a.push(x);
            b.push(x + 1e6);
        }
        assert!((a.population_variance() - b.population_variance()).abs() < 1e-4);
    }
}
