//! Error function and complementary error function.
//!
//! The implementation follows W. J. Cody's rational Chebyshev approximations
//! (as used by most libm implementations), giving roughly 1e-15 relative
//! accuracy over the whole real line. The complementary error function is
//! computed directly in the tail so that `erfc(x)` keeps full relative
//! precision for large `x` — this matters because the theorem bounds of the
//! paper evaluate `Φ` deep in the tail (miss probabilities of 1e-6 or less).

/// Coefficients for |x| <= 0.5 (erf).
const ERF_A: [f64; 5] = [
    3.16112374387056560e0,
    1.13864154151050156e2,
    3.77485237685302021e2,
    3.20937758913846947e3,
    1.85777706184603153e-1,
];
const ERF_B: [f64; 4] = [
    2.36012909523441209e1,
    2.44024637934444173e2,
    1.28261652607737228e3,
    2.84423683343917062e3,
];

/// Coefficients for 0.46875 <= |x| <= 4.0 (erfc).
const ERF_C: [f64; 9] = [
    5.64188496988670089e-1,
    8.88314979438837594e0,
    6.61191906371416295e1,
    2.98635138197400131e2,
    8.81952221241769090e2,
    1.71204761263407058e3,
    2.05107837782607147e3,
    1.23033935479799725e3,
    2.15311535474403846e-8,
];
const ERF_D: [f64; 8] = [
    1.57449261107098347e1,
    1.17693950891312499e2,
    5.37181101862009858e2,
    1.62138957456669019e3,
    3.29079923573345963e3,
    4.36261909014324716e3,
    3.43936767414372164e3,
    1.23033935480374942e3,
];

/// Coefficients for |x| > 4.0 (erfc).
const ERF_P: [f64; 6] = [
    3.05326634961232344e-1,
    3.60344899949804439e-1,
    1.25781726111229246e-1,
    1.60837851487422766e-2,
    6.58749161529837803e-4,
    1.63153871373020978e-2,
];
const ERF_Q: [f64; 5] = [
    2.56852019228982242e0,
    1.87295284992346047e0,
    5.27905102951428412e-1,
    6.05183413124413191e-2,
    2.33520497626869185e-3,
];

const SQRT_PI_INV: f64 = 0.564_189_583_547_756_3; // 1/sqrt(pi)
const THRESH: f64 = 0.46875;

/// Central region evaluation of `erf(x)` for `|x| <= 0.46875`.
fn erf_central(x: f64) -> f64 {
    let z = x * x;
    let num = ((((ERF_A[4] * z + ERF_A[0]) * z + ERF_A[1]) * z + ERF_A[2]) * z) + ERF_A[3];
    let den = ((((z + ERF_B[0]) * z + ERF_B[1]) * z + ERF_B[2]) * z) + ERF_B[3];
    x * num / den
}

/// Mid-range evaluation of `erfc(|x|)` for `0.46875 <= |x| <= 4`.
fn erfc_mid(ax: f64) -> f64 {
    let num = ERF_C[8] * ax + ERF_C[0];
    let num = (((((((num * ax + ERF_C[1]) * ax + ERF_C[2]) * ax + ERF_C[3]) * ax + ERF_C[4])
        * ax
        + ERF_C[5])
        * ax
        + ERF_C[6])
        * ax)
        + ERF_C[7];
    let den = (((((((ax + ERF_D[0]) * ax + ERF_D[1]) * ax + ERF_D[2]) * ax + ERF_D[3]) * ax
        + ERF_D[4])
        * ax
        + ERF_D[5])
        * ax
        + ERF_D[6])
        * ax
        + ERF_D[7];
    let z = (ax * 16.0).trunc() / 16.0;
    let del = (ax - z) * (ax + z);
    (-z * z).exp() * (-del).exp() * num / den
}

/// Tail evaluation of `erfc(|x|)` for `|x| > 4`.
fn erfc_tail(ax: f64) -> f64 {
    let z = 1.0 / (ax * ax);
    let num =
        ((((ERF_P[5] * z + ERF_P[0]) * z + ERF_P[1]) * z + ERF_P[2]) * z + ERF_P[3]) * z + ERF_P[4];
    let den = ((((z + ERF_Q[0]) * z + ERF_Q[1]) * z + ERF_Q[2]) * z + ERF_Q[3]) * z + ERF_Q[4];
    let mut r = z * num / den;
    r = (SQRT_PI_INV - r) / ax;
    let zz = (ax * 16.0).trunc() / 16.0;
    let del = (ax - zz) * (ax + zz);
    (-zz * zz).exp() * (-del).exp() * r
}

/// The error function `erf(x) = 2/sqrt(pi) * ∫_0^x exp(-t²) dt`.
///
/// Accurate to about 1e-15 relative error. `erf` is odd, bounded in
/// `(-1, 1)`, and `erf(±∞) = ±1`.
///
/// ```
/// use ascs_numerics::erf;
/// assert!((erf(0.0)).abs() < 1e-15);
/// assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-12);
/// ```
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let ax = x.abs();
    if ax <= THRESH {
        erf_central(x)
    } else if ax <= 4.0 {
        let r = 1.0 - erfc_mid(ax);
        if x < 0.0 {
            -r
        } else {
            r
        }
    } else if ax < 6.0 {
        let r = 1.0 - erfc_tail(ax);
        if x < 0.0 {
            -r
        } else {
            r
        }
    } else if x < 0.0 {
        -1.0
    } else {
        1.0
    }
}

/// The complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Computed directly (not as `1 - erf(x)`) in the tails so that relative
/// precision is preserved for large positive `x` where the value underflows
/// towards zero.
///
/// ```
/// use ascs_numerics::erfc;
/// assert!((erfc(0.0) - 1.0).abs() < 1e-15);
/// // Deep tail keeps relative precision.
/// assert!(erfc(10.0) > 0.0 && erfc(10.0) < 1e-40);
/// ```
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let ax = x.abs();
    if ax <= THRESH {
        1.0 - erf_central(x)
    } else if x < 0.0 {
        // erfc(-x) = 2 - erfc(x)
        if ax <= 4.0 {
            2.0 - erfc_mid(ax)
        } else {
            2.0 - erfc_tail(ax)
        }
    } else if ax <= 4.0 {
        erfc_mid(ax)
    } else {
        let r = erfc_tail(ax);
        if r.is_finite() {
            r
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values computed with mpmath at 50 digits.
    const REFERENCE: &[(f64, f64)] = &[
        (0.0, 0.0),
        (0.1, 0.1124629160182849),
        (0.25, 0.2763263901682369),
        (0.5, 0.5204998778130465),
        (1.0, 0.8427007929497149),
        (1.5, 0.9661051464753107),
        (2.0, 0.9953222650189527),
        (3.0, 0.9999779095030014),
        (4.0, 0.9999999845827421),
    ];

    #[test]
    fn erf_matches_reference_values() {
        for &(x, want) in REFERENCE {
            let got = erf(x);
            assert!(
                (got - want).abs() < 1e-12,
                "erf({x}) = {got}, expected {want}"
            );
        }
    }

    #[test]
    fn erf_is_odd() {
        for &x in &[0.1, 0.5, 1.0, 2.3, 4.5, 7.0] {
            assert!((erf(x) + erf(-x)).abs() < 1e-15, "erf not odd at {x}");
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for &x in &[-3.0, -1.0, -0.2, 0.0, 0.2, 1.0, 3.0] {
            assert!(
                (erf(x) + erfc(x) - 1.0).abs() < 1e-13,
                "erf+erfc != 1 at {x}"
            );
        }
    }

    #[test]
    fn erfc_deep_tail_positive_and_tiny() {
        let v = erfc(8.0);
        assert!(v > 0.0);
        assert!(v < 1e-28);
        // Known value: erfc(8) ≈ 1.1224297172982928e-29
        assert!((v / 1.1224297172982928e-29 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn erfc_negative_tail_approaches_two() {
        assert!((erfc(-8.0) - 2.0).abs() < 1e-15);
        assert!(erfc(-1.0) > 1.0 && erfc(-1.0) < 2.0);
    }

    #[test]
    fn erf_saturates_at_infinity() {
        assert_eq!(erf(f64::INFINITY), 1.0);
        assert_eq!(erf(f64::NEG_INFINITY), -1.0);
        assert_eq!(erf(100.0), 1.0);
        assert_eq!(erf(-100.0), -1.0);
    }

    #[test]
    fn nan_propagates() {
        assert!(erf(f64::NAN).is_nan());
        assert!(erfc(f64::NAN).is_nan());
    }

    #[test]
    fn erf_monotone_on_grid() {
        let mut prev = erf(-6.0);
        let mut x = -6.0;
        while x <= 6.0 {
            let v = erf(x);
            assert!(v + 1e-16 >= prev, "erf not monotone at {x}");
            prev = v;
            x += 0.01;
        }
    }
}
