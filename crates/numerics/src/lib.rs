//! Numerical substrate for the ASCS reproduction.
//!
//! The ASCS paper leans on a small amount of classical numerical machinery:
//!
//! * the standard normal distribution (`Φ`, its density and its quantile
//!   function) — every bound in Theorems 1–3 is expressed through `Φ`;
//! * running (single-pass) estimates of means, variances and covariances —
//!   both the streaming covariance engine and the evaluation layer need
//!   them;
//! * order statistics: medians (count-sketch retrieval is a median of `K`
//!   rows), percentiles (the signal strength `u` is chosen as a percentile
//!   of the estimated mean vector), and empirical CDFs (Figures 1–2);
//! * histograms and QQ-plot helpers (Figures 3–4).
//!
//! Everything here is implemented from scratch on top of `std` so that the
//! core crates carry no numerical dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The erf / normal-quantile rational approximations are defined by
// published full-precision coefficient tables; truncating them to what f64
// can represent exactly would obscure their provenance.
#![allow(clippy::excessive_precision)]

pub mod cdf;
pub mod erf;
pub mod hist;
pub mod normal;
pub mod qq;
pub mod quantiles;
pub mod welford;

pub use cdf::EmpiricalCdf;
pub use erf::{erf, erfc};
pub use hist::Histogram;
pub use normal::{normal_cdf, normal_pdf, normal_quantile, StandardNormal};
pub use qq::{qq_correlation, qq_points, QqPoint};
pub use quantiles::{median, median_in_place, percentile, percentile_sorted};
pub use welford::{RunningCovariance, RunningMoments};
