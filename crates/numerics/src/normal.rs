//! Standard normal distribution: density, CDF `Φ`, and quantile `Φ⁻¹`.
//!
//! Every theorem bound in the ASCS paper (Theorems 1–3) is stated through
//! the standard normal CDF, and Algorithm 3 inverts those bounds to pick the
//! exploration length `T0` and the threshold slope `θ`. The evaluation layer
//! additionally needs `Φ⁻¹` for QQ plots (Figure 4).

use crate::erf::{erf, erfc};

const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;
const SQRT_2: f64 = std::f64::consts::SQRT_2;
const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;

/// Density of the standard normal distribution at `x`.
///
/// ```
/// use ascs_numerics::normal_pdf;
/// assert!((normal_pdf(0.0) - 0.3989422804014327).abs() < 1e-15);
/// ```
pub fn normal_pdf(x: f64) -> f64 {
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// The standard normal CDF `Φ(x) = P[Z ≤ x]`.
///
/// Implemented through `erfc` so that the lower tail keeps full relative
/// precision: `Φ(-8) ≈ 6.2e-16` is returned exactly rather than rounding to
/// zero the way `0.5 * (1 + erf(x/√2))` would.
///
/// ```
/// use ascs_numerics::normal_cdf;
/// assert!((normal_cdf(0.0) - 0.5).abs() < 1e-15);
/// assert!((normal_cdf(1.959963984540054) - 0.975).abs() < 1e-12);
/// ```
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x * FRAC_1_SQRT_2)
}

/// Upper tail of the standard normal distribution, `P[Z > x] = 1 - Φ(x)`.
///
/// Kept as a separate function because the theorem bounds subtract survival
/// probabilities and the naive `1.0 - normal_cdf(x)` loses precision for
/// large `x`.
pub fn normal_sf(x: f64) -> f64 {
    0.5 * erfc(x * FRAC_1_SQRT_2)
}

/// Quantile function (inverse CDF) of the standard normal distribution.
///
/// Uses Peter Acklam's rational approximation refined by one step of
/// Halley's method against [`normal_cdf`], which brings the result to full
/// double precision across `p ∈ (0, 1)`.
///
/// Returns `-∞` for `p = 0`, `+∞` for `p = 1`, and `NaN` outside `[0, 1]`.
///
/// ```
/// use ascs_numerics::{normal_cdf, normal_quantile};
/// for &p in &[0.01, 0.1, 0.5, 0.9, 0.975, 0.999] {
///     assert!((normal_cdf(normal_quantile(p)) - p).abs() < 1e-12);
/// }
/// ```
pub fn normal_quantile(p: f64) -> f64 {
    if p.is_nan() || !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }

    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step against the high-precision CDF.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + 0.5 * x * u)
}

/// Convenience wrapper bundling the standard normal distribution functions.
///
/// Useful when a distribution object is expected generically (e.g. QQ-plot
/// reference quantiles).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StandardNormal;

impl StandardNormal {
    /// Density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        normal_pdf(x)
    }
    /// CDF at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        normal_cdf(x)
    }
    /// Survival function at `x`.
    pub fn sf(&self, x: f64) -> f64 {
        normal_sf(x)
    }
    /// Quantile at probability `p`.
    pub fn quantile(&self, p: f64) -> f64 {
        normal_quantile(p)
    }
}

/// CDF of a `N(mu, sigma²)` variable evaluated at `x`.
///
/// `sigma` must be strictly positive; a degenerate (zero-variance)
/// distribution is handled as a point mass at `mu`.
pub fn gaussian_cdf(x: f64, mu: f64, sigma: f64) -> f64 {
    if sigma <= 0.0 {
        return if x < mu { 0.0 } else { 1.0 };
    }
    normal_cdf((x - mu) / sigma)
}

/// Two-sided tail probability `P[|Z| > x]` for the standard normal.
pub fn normal_two_sided_tail(x: f64) -> f64 {
    let ax = x.abs();
    erfc(ax * FRAC_1_SQRT_2)
}

/// `Φ(x)` expressed through `erf`, retained for cross-checking in tests.
#[doc(hidden)]
pub fn normal_cdf_via_erf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / SQRT_2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_reference_values() {
        // (x, Φ(x)) pairs from standard tables / mpmath.
        let cases = [
            (-3.0, 0.0013498980316300933),
            (-1.959963984540054, 0.025),
            (-1.0, 0.15865525393145707),
            (0.0, 0.5),
            (0.5, 0.6914624612740131),
            (1.0, 0.8413447460685429),
            (1.6448536269514722, 0.95),
            (2.3263478740408408, 0.99),
            (3.090232306167813, 0.999),
        ];
        for (x, want) in cases {
            let got = normal_cdf(x);
            assert!(
                (got - want).abs() < 1e-12,
                "Phi({x}) = {got}, expected {want}"
            );
        }
    }

    #[test]
    fn cdf_and_sf_sum_to_one() {
        for &x in &[-5.0, -2.0, -0.3, 0.0, 0.7, 2.5, 6.0] {
            assert!((normal_cdf(x) + normal_sf(x) - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn cdf_symmetry() {
        for &x in &[0.1, 0.9, 1.7, 3.3] {
            assert!((normal_cdf(-x) - normal_sf(x)).abs() < 1e-15);
        }
    }

    #[test]
    fn deep_lower_tail_keeps_relative_precision() {
        let v = normal_cdf(-8.0);
        assert!(v > 0.0);
        // Φ(-8) ≈ 6.22096e-16
        assert!((v / 6.220960574271786e-16 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn quantile_round_trips_cdf() {
        for i in 1..200 {
            let p = i as f64 / 200.0;
            let x = normal_quantile(p);
            assert!(
                (normal_cdf(x) - p).abs() < 1e-12,
                "round trip failed at p={p}"
            );
        }
    }

    #[test]
    fn quantile_known_points() {
        assert!((normal_quantile(0.5)).abs() < 1e-14);
        assert!((normal_quantile(0.975) - 1.959963984540054).abs() < 1e-10);
        assert!((normal_quantile(0.0013498980316300933) + 3.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_edge_cases() {
        assert_eq!(normal_quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(normal_quantile(1.0), f64::INFINITY);
        assert!(normal_quantile(-0.1).is_nan());
        assert!(normal_quantile(1.1).is_nan());
        assert!(normal_quantile(f64::NAN).is_nan());
    }

    #[test]
    fn pdf_integrates_to_one_on_grid() {
        // Simple trapezoid check that the density is normalised.
        let mut sum = 0.0;
        let h = 1e-3;
        let mut x = -10.0;
        while x < 10.0 {
            sum += 0.5 * (normal_pdf(x) + normal_pdf(x + h)) * h;
            x += h;
        }
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn gaussian_cdf_standardises() {
        assert!((gaussian_cdf(3.0, 1.0, 2.0) - normal_cdf(1.0)).abs() < 1e-15);
        // Degenerate sigma behaves like a step function at mu.
        assert_eq!(gaussian_cdf(0.9, 1.0, 0.0), 0.0);
        assert_eq!(gaussian_cdf(1.0, 1.0, 0.0), 1.0);
    }

    #[test]
    fn erf_and_erfc_paths_agree_in_centre() {
        for &x in &[-2.0, -0.5, 0.0, 0.5, 2.0] {
            assert!((normal_cdf(x) - normal_cdf_via_erf(x)).abs() < 1e-14);
        }
    }

    #[test]
    fn two_sided_tail_matches_direct_sum() {
        for &x in &[0.5, 1.0, 2.0, 3.0] {
            let direct = normal_cdf(-x) + normal_sf(x);
            assert!((normal_two_sided_tail(x) - direct).abs() < 1e-14);
        }
    }

    #[test]
    fn standard_normal_struct_delegates() {
        let n = StandardNormal;
        assert_eq!(n.cdf(0.3), normal_cdf(0.3));
        assert_eq!(n.pdf(0.3), normal_pdf(0.3));
        assert_eq!(n.sf(0.3), normal_sf(0.3));
        assert_eq!(n.quantile(0.3), normal_quantile(0.3));
    }
}
