//! Empirical cumulative distribution functions.
//!
//! Figures 1 and 2 of the paper plot, for each dataset, the empirical
//! proportion of values whose magnitude lies below a threshold
//! (`y = P̂[|value| ≤ x]`). [`EmpiricalCdf`] stores a sorted sample and
//! evaluates that proportion at arbitrary points, and can emit an evenly
//! spaced curve ready for plotting or tabulation.

use serde::{Deserialize, Serialize};

/// An empirical CDF built from a finite sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Builds the CDF from a sample (NaNs are dropped).
    pub fn new(values: impl IntoIterator<Item = f64>) -> Self {
        let mut sorted: Vec<f64> = values.into_iter().filter(|v| !v.is_nan()).collect();
        sorted.sort_unstable_by(|a, b| a.total_cmp(b));
        Self { sorted }
    }

    /// Builds the CDF of absolute values, as used by Figures 1–2.
    pub fn of_absolute_values(values: impl IntoIterator<Item = f64>) -> Self {
        Self::new(values.into_iter().map(f64::abs))
    }

    /// Number of retained observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the sample was empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P̂[X ≤ x]`: fraction of the sample less than or equal to `x`.
    ///
    /// Returns 0 for an empty sample.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // partition_point gives the count of elements <= x because the
        // predicate is monotone over the sorted sample.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Value below which a fraction `q ∈ [0, 1]` of the sample lies
    /// (empirical quantile, inverse of [`eval`](Self::eval)).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        Some(crate::quantiles::percentile_sorted(
            &self.sorted,
            q.clamp(0.0, 1.0) * 100.0,
        ))
    }

    /// Smallest observation.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Largest observation.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Emits `points` evenly spaced `(x, P̂[X ≤ x])` pairs spanning the
    /// sample range, ready for plotting Figure 1 / Figure 2 style curves.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = self.sorted[self.sorted.len() - 1];
        if points == 1 || hi == lo {
            return vec![(hi, 1.0)];
        }
        let step = (hi - lo) / (points - 1) as f64;
        (0..points)
            .map(|i| {
                let x = lo + step * i as f64;
                (x, self.eval(x))
            })
            .collect()
    }

    /// Fraction of the sample whose value is strictly greater than `x`.
    pub fn survival(&self, x: f64) -> f64 {
        1.0 - self.eval(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_counts_inclusive() {
        let cdf = EmpiricalCdf::new([1.0, 2.0, 2.0, 3.0]);
        assert_eq!(cdf.eval(0.5), 0.0);
        assert_eq!(cdf.eval(1.0), 0.25);
        assert_eq!(cdf.eval(2.0), 0.75);
        assert_eq!(cdf.eval(2.5), 0.75);
        assert_eq!(cdf.eval(3.0), 1.0);
        assert_eq!(cdf.eval(10.0), 1.0);
    }

    #[test]
    fn absolute_value_constructor() {
        let cdf = EmpiricalCdf::of_absolute_values([-0.5, 0.5, -1.0, 0.1]);
        assert_eq!(cdf.eval(0.5), 0.75);
        assert_eq!(cdf.min(), Some(0.1));
        assert_eq!(cdf.max(), Some(1.0));
    }

    #[test]
    fn empty_sample_is_safe() {
        let cdf = EmpiricalCdf::new(std::iter::empty());
        assert!(cdf.is_empty());
        assert_eq!(cdf.eval(1.0), 0.0);
        assert_eq!(cdf.quantile(0.5), None);
        assert!(cdf.curve(10).is_empty());
    }

    #[test]
    fn nans_are_dropped() {
        let cdf = EmpiricalCdf::new([1.0, f64::NAN, 2.0]);
        assert_eq!(cdf.len(), 2);
        assert_eq!(cdf.eval(1.5), 0.5);
    }

    #[test]
    fn quantile_round_trip() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let cdf = EmpiricalCdf::new(xs);
        let q50 = cdf.quantile(0.5).unwrap();
        assert!((q50 - 49.5).abs() < 1e-9);
        assert!((cdf.eval(q50) - 0.5).abs() < 0.02);
    }

    #[test]
    fn curve_is_monotone_and_ends_at_one() {
        let xs: Vec<f64> = (0..50).map(|i| ((i * 31) % 17) as f64 / 17.0).collect();
        let cdf = EmpiricalCdf::new(xs);
        let curve = cdf.curve(25);
        assert_eq!(curve.len(), 25);
        for pair in curve.windows(2) {
            assert!(pair[1].1 >= pair[0].1, "CDF curve must be non-decreasing");
        }
        assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_sample_curve() {
        let cdf = EmpiricalCdf::new([2.0, 2.0, 2.0]);
        let curve = cdf.curve(5);
        assert_eq!(curve, vec![(2.0, 1.0)]);
    }

    #[test]
    fn survival_complements_eval() {
        let cdf = EmpiricalCdf::new([0.0, 1.0, 2.0, 3.0, 4.0]);
        for &x in &[-1.0, 0.0, 2.0, 4.5] {
            assert!((cdf.eval(x) + cdf.survival(x) - 1.0).abs() < 1e-15);
        }
    }
}
