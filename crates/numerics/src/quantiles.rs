//! Medians and percentiles.
//!
//! Count-sketch retrieval takes the median across `K` hash rows, and the
//! ASCS hyperparameter heuristics of Section 8.1 pick the signal strength
//! `u` as the `(1 - α)` percentile of the (estimated) mean vector `μ̂` and
//! the initial threshold `τ(T0)` as a small percentile of the same vector.

/// Median of a small slice without modifying it (the slice is copied).
///
/// The even-length convention is the average of the two middle order
/// statistics. Returns `None` for an empty slice. `NaN`s are not expected by
/// callers and are sorted to the end.
///
/// ```
/// use ascs_numerics::median;
/// assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
/// assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), Some(2.5));
/// assert_eq!(median(&[]), None);
/// ```
pub fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut buf = values.to_vec();
    Some(median_in_place(&mut buf))
}

/// Median of a mutable slice using `select_nth_unstable` (O(n) expected, no
/// allocation). The slice order is scrambled. Panics on an empty slice.
pub fn median_in_place(values: &mut [f64]) -> f64 {
    assert!(!values.is_empty(), "median of empty slice");
    let n = values.len();
    let mid = n / 2;
    let total_cmp = |a: &f64, b: &f64| a.total_cmp(b);
    if n % 2 == 1 {
        *values.select_nth_unstable_by(mid, total_cmp).1
    } else {
        let hi = *values.select_nth_unstable_by(mid, total_cmp).1;
        // After the first selection everything left of `mid` is <= hi, so the
        // lower middle element is the maximum of the left partition.
        let lo = values[..mid]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        0.5 * (lo + hi)
    }
}

/// Median of exactly `K` sketch-row readings given in a fixed-size buffer.
///
/// This is the hot path of count-sketch retrieval; it avoids allocation and
/// handles the common small `K` (≤ 10) with a simple insertion sort.
#[inline]
pub fn median_of_rows(rows: &mut [f64]) -> f64 {
    debug_assert!(!rows.is_empty());
    // Insertion sort: K is tiny (typically 4-10), branch-predictable, and
    // faster than the general selection machinery at that size.
    for i in 1..rows.len() {
        let mut j = i;
        while j > 0 && rows[j - 1] > rows[j] {
            rows.swap(j - 1, j);
            j -= 1;
        }
    }
    let n = rows.len();
    if n % 2 == 1 {
        rows[n / 2]
    } else {
        0.5 * (rows[n / 2 - 1] + rows[n / 2])
    }
}

/// Percentile (in `[0, 100]`) of an unsorted slice using linear
/// interpolation between order statistics (the "linear" / type-7 method).
///
/// Returns `None` for an empty slice.
///
/// ```
/// use ascs_numerics::percentile;
/// let xs = [15.0, 20.0, 35.0, 40.0, 50.0];
/// assert_eq!(percentile(&xs, 0.0), Some(15.0));
/// assert_eq!(percentile(&xs, 100.0), Some(50.0));
/// assert_eq!(percentile(&xs, 50.0), Some(35.0));
/// ```
pub fn percentile(values: &[f64], pct: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut buf = values.to_vec();
    buf.sort_unstable_by(|a, b| a.total_cmp(b));
    Some(percentile_sorted(&buf, pct))
}

/// Percentile of an already ascending-sorted slice. Panics if empty.
pub fn percentile_sorted(sorted: &[f64], pct: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    let pct = pct.clamp(0.0, 100.0);
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = pct / 100.0 * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Returns the `k` largest values of `values` in descending order.
///
/// Used by the evaluation layer to pick the top reported pairs. `k` larger
/// than the slice length returns the whole slice sorted descending.
pub fn top_k(values: &[f64], k: usize) -> Vec<f64> {
    let mut buf = values.to_vec();
    buf.sort_unstable_by(|a, b| b.total_cmp(a));
    buf.truncate(k);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[5.0]), Some(5.0));
        assert_eq!(median(&[1.0, 2.0]), Some(1.5));
        assert_eq!(median(&[9.0, 1.0, 5.0, 3.0, 7.0]), Some(5.0));
        assert_eq!(median(&[4.0, 2.0, 8.0, 6.0]), Some(5.0));
    }

    #[test]
    fn median_empty_is_none() {
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn median_in_place_matches_sort_based() {
        let data: Vec<f64> = (0..101).map(|i| ((i * 73) % 101) as f64).collect();
        let mut sorted = data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expect = sorted[50];
        let mut buf = data;
        assert_eq!(median_in_place(&mut buf), expect);
    }

    #[test]
    fn median_of_rows_small_k() {
        let mut k5 = [0.3, -1.0, 0.7, 0.1, 0.2];
        assert_eq!(median_of_rows(&mut k5), 0.2);
        let mut k4 = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(median_of_rows(&mut k4), 2.5);
        let mut k1 = [7.0];
        assert_eq!(median_of_rows(&mut k1), 7.0);
    }

    #[test]
    fn median_of_rows_is_order_invariant() {
        let base = [0.9, -0.4, 0.0, 2.2, -1.7, 0.3, 0.3];
        let mut a = base;
        let mut b = base;
        b.reverse();
        assert_eq!(median_of_rows(&mut a), median_of_rows(&mut b));
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), Some(10.0));
        assert_eq!(percentile(&xs, 100.0), Some(40.0));
        // Rank = 0.25 * 3 = 0.75 -> 10 + 0.75*(20-10) = 17.5
        assert_eq!(percentile(&xs, 25.0), Some(17.5));
        assert_eq!(percentile(&xs, 50.0), Some(25.0));
    }

    #[test]
    fn percentile_handles_unsorted_input() {
        let xs = [40.0, 10.0, 30.0, 20.0];
        assert_eq!(percentile(&xs, 50.0), Some(25.0));
    }

    #[test]
    fn percentile_empty_and_singleton() {
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[3.0], 0.0), Some(3.0));
        assert_eq!(percentile(&[3.0], 99.0), Some(3.0));
    }

    #[test]
    fn percentile_clamps_out_of_range_pct() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&xs, -5.0), Some(1.0));
        assert_eq!(percentile(&xs, 150.0), Some(3.0));
    }

    #[test]
    fn percentile_sorted_panics_on_empty() {
        let r = std::panic::catch_unwind(|| percentile_sorted(&[], 50.0));
        assert!(r.is_err());
    }

    #[test]
    fn top_k_returns_descending_prefix() {
        let xs = [0.1, 0.9, -0.5, 0.7, 0.3];
        assert_eq!(top_k(&xs, 2), vec![0.9, 0.7]);
        assert_eq!(top_k(&xs, 10).len(), 5);
        assert_eq!(top_k(&xs, 0), Vec::<f64>::new());
    }
}
