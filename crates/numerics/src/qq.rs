//! QQ-plot helpers.
//!
//! Figure 4 of the paper compares the marginal distribution of empirical
//! covariance entries against a normal distribution using quantile-quantile
//! plots. [`qq_points`] produces the `(theoretical, sample)` quantile pairs
//! and [`qq_correlation`] summarises how straight the plot is (a value near
//! 1 means the sample is close to normal), which lets the reproduction turn
//! the paper's visual argument into a checkable number.

use crate::normal::normal_quantile;
use serde::{Deserialize, Serialize};

/// One point of a QQ plot: the theoretical quantile of the reference
/// distribution and the matching sample order statistic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QqPoint {
    /// Quantile of the reference (standard normal) distribution.
    pub theoretical: f64,
    /// Matching order statistic of the standardised sample.
    pub sample: f64,
}

/// Produces QQ-plot points of `values` against the standard normal.
///
/// The sample is standardised (centred by its mean, scaled by its standard
/// deviation) so that a perfectly normal sample of any location/scale falls
/// on the `y = x` line. Plotting positions follow the common
/// `(i + 0.5) / n` convention. Returns an empty vector when fewer than two
/// distinct observations are available.
pub fn qq_points(values: &[f64]) -> Vec<QqPoint> {
    let clean: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    let n = clean.len();
    if n < 2 {
        return Vec::new();
    }
    let mean = clean.iter().sum::<f64>() / n as f64;
    let var = clean.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
    let std = var.sqrt();
    if std == 0.0 {
        return Vec::new();
    }
    let mut sorted = clean;
    sorted.sort_unstable_by(|a, b| a.total_cmp(b));
    sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| QqPoint {
            theoretical: normal_quantile((i as f64 + 0.5) / n as f64),
            sample: (x - mean) / std,
        })
        .collect()
}

/// Pearson correlation between theoretical and sample quantiles of a QQ
/// plot — the classic probability-plot correlation coefficient (PPCC).
///
/// Values close to 1 indicate the sample is well approximated by a normal
/// distribution; heavy skew or tails pull the value down. Returns 0 when
/// the plot could not be formed.
pub fn qq_correlation(values: &[f64]) -> f64 {
    let pts = qq_points(values);
    if pts.len() < 2 {
        return 0.0;
    }
    let n = pts.len() as f64;
    let mx = pts.iter().map(|p| p.theoretical).sum::<f64>() / n;
    let my = pts.iter().map(|p| p.sample).sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for p in &pts {
        let dx = p.theoretical - mx;
        let dy = p.sample - my;
        sxx += dx * dx;
        syy += dy * dy;
        sxy += dx * dy;
    }
    let denom = (sxx * syy).sqrt();
    if denom == 0.0 {
        0.0
    } else {
        sxy / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic "pseudo-normal" sample built from the quantile function
    /// itself — by construction it lies exactly on the reference line.
    fn exact_normal_sample(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| normal_quantile((i as f64 + 0.5) / n as f64))
            .collect()
    }

    #[test]
    fn exact_normal_sample_gives_unit_ppcc() {
        let sample = exact_normal_sample(500);
        let r = qq_correlation(&sample);
        assert!(r > 0.9999, "PPCC of an exact normal sample was {r}");
    }

    #[test]
    fn points_are_sorted_and_standardised() {
        let sample = [10.0, 12.0, 14.0, 16.0, 18.0];
        let pts = qq_points(&sample);
        assert_eq!(pts.len(), 5);
        for w in pts.windows(2) {
            assert!(w[1].theoretical > w[0].theoretical);
            assert!(w[1].sample >= w[0].sample);
        }
        // Standardised sample has mean ~0.
        let mean: f64 = pts.iter().map(|p| p.sample).sum::<f64>() / 5.0;
        assert!(mean.abs() < 1e-12);
    }

    #[test]
    fn location_and_scale_invariance() {
        let base = exact_normal_sample(200);
        let shifted: Vec<f64> = base.iter().map(|x| 3.0 + 7.0 * x).collect();
        let r1 = qq_correlation(&base);
        let r2 = qq_correlation(&shifted);
        assert!((r1 - r2).abs() < 1e-12);
    }

    #[test]
    fn heavy_tailed_sample_scores_lower() {
        // Cubing normal quantiles produces a markedly heavier-tailed sample.
        let heavy: Vec<f64> = exact_normal_sample(500).iter().map(|x| x.powi(3)).collect();
        let r_normal = qq_correlation(&exact_normal_sample(500));
        let r_heavy = qq_correlation(&heavy);
        assert!(r_heavy < r_normal);
        assert!(r_heavy < 0.99);
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        assert!(qq_points(&[]).is_empty());
        assert!(qq_points(&[1.0]).is_empty());
        assert!(qq_points(&[2.0, 2.0, 2.0]).is_empty());
        assert_eq!(qq_correlation(&[]), 0.0);
        assert_eq!(qq_correlation(&[5.0, 5.0]), 0.0);
    }

    #[test]
    fn nan_values_are_ignored() {
        let mut sample = exact_normal_sample(100);
        sample.push(f64::NAN);
        let r = qq_correlation(&sample);
        assert!(r > 0.999);
    }
}
