//! Accuracy tests for the numerical substrate: the quantile function must
//! invert the CDF across the whole usable domain, and `erf`/`erfc` must
//! match published reference values to near machine precision. The theorem
//! bounds of the paper evaluate `Φ` deep in the tails, so tail accuracy is
//! tested explicitly.

// Reference constants are quoted at full published precision on purpose.
#![allow(clippy::excessive_precision)]

use ascs_numerics::{erf, erfc, normal_cdf, normal_pdf, normal_quantile};

/// Reference values computed with mpmath at 50 decimal digits.
const ERF_REFERENCE: &[(f64, f64)] = &[
    (0.0, 0.0),
    (0.1, 0.1124629160182848922032750717439683832217),
    (0.25, 0.2763263901682369017170446976637239243311),
    (0.5, 0.5204998778130465376827466538919645287365),
    (1.0, 0.8427007929497148693412206350826092592961),
    (1.5, 0.9661051464753107270669762616459478586814),
    (2.0, 0.9953222650189527341620692563672529286109),
    (3.0, 0.9999779095030014145586272238704176796202),
    (4.0, 0.9999999845827420997199811478403265131160),
];

const ERFC_REFERENCE: &[(f64, f64)] = &[
    (0.5, 0.4795001221869534623172533461080354712635),
    (1.0, 0.1572992070502851306587793649173907407039),
    (2.0, 0.004677734981046765837930743732747071389108),
    (3.0, 2.209049699858544137277612958232037975543e-5),
    (5.0, 1.537459794428034850188343485383378890118e-12),
    (10.0, 2.088487583762544757000786294957788611561e-45),
];

#[test]
fn erf_matches_reference_values() {
    for &(x, want) in ERF_REFERENCE {
        let got = erf(x);
        assert!((got - want).abs() <= 1e-14, "erf({x}) = {got}, want {want}");
        // Odd symmetry.
        assert_eq!(erf(-x), -got, "erf must be odd at x = {x}");
    }
}

#[test]
fn erfc_matches_reference_values_with_relative_precision() {
    for &(x, want) in ERFC_REFERENCE {
        let got = erfc(x);
        let rel = ((got - want) / want).abs();
        assert!(
            rel <= 1e-12,
            "erfc({x}) = {got}, want {want} (rel err {rel:.3e})"
        );
    }
}

#[test]
fn erf_and_erfc_are_complementary() {
    for i in 0..=200 {
        let x = -5.0 + i as f64 * 0.05;
        let sum = erf(x) + erfc(x);
        assert!((sum - 1.0).abs() <= 1e-14, "erf + erfc = {sum} at x = {x}");
    }
}

#[test]
fn normal_quantile_inverts_cdf_over_a_fine_grid() {
    // Grid over x: quantile(cdf(x)) must recover x.
    for i in 0..=240 {
        let x = -6.0 + i as f64 * 0.05;
        let p = normal_cdf(x);
        let back = normal_quantile(p);
        assert!((back - x).abs() <= 1e-8, "quantile(cdf({x})) = {back}");
    }
    // Grid over p including deep tails: cdf(quantile(p)) must recover p.
    let mut ps = vec![1e-12, 1e-9, 1e-6, 1e-4];
    for i in 1..100 {
        ps.push(i as f64 / 100.0);
    }
    for &p in &ps {
        for &q in &[p, 1.0 - p] {
            let x = normal_quantile(q);
            let back = normal_cdf(x);
            let rel = ((back - q) / q.min(1.0 - q).max(f64::MIN_POSITIVE)).abs();
            assert!(
                rel <= 1e-6,
                "cdf(quantile({q})) = {back} (rel err {rel:.3e})"
            );
        }
    }
}

#[test]
fn normal_cdf_reference_points() {
    // Φ(0) = 1/2, Φ(1.959964…) ≈ 0.975, Φ(−1.281552…) ≈ 0.10.
    assert!((normal_cdf(0.0) - 0.5).abs() <= 1e-15);
    assert!((normal_cdf(1.959963984540054) - 0.975).abs() <= 1e-12);
    assert!((normal_cdf(-1.2815515655446004) - 0.10).abs() <= 1e-12);
    // Deep tail with relative accuracy: Φ(−6) = 9.865876450376946e-10.
    let tail = normal_cdf(-6.0);
    let want = 9.865876450376946e-10;
    assert!(((tail - want) / want).abs() <= 1e-10, "Φ(−6) = {tail}");
}

#[test]
fn quantile_edges_and_pdf_shape() {
    assert_eq!(normal_quantile(0.0), f64::NEG_INFINITY);
    assert_eq!(normal_quantile(1.0), f64::INFINITY);
    assert!(normal_quantile(f64::NAN).is_nan());
    assert!((normal_quantile(0.5)).abs() <= 1e-15);
    // The density is symmetric, peaks at 0 with value 1/sqrt(2π).
    let peak = 1.0 / (2.0 * std::f64::consts::PI).sqrt();
    assert!((normal_pdf(0.0) - peak).abs() <= 1e-15);
    assert_eq!(normal_pdf(1.3), normal_pdf(-1.3));
}
