//! # ASCS — Active Sampling Count Sketch
//!
//! A Rust implementation of *Active Sampling Count Sketch (ASCS) for Online
//! Sparse Estimation of a Trillion Scale Covariance Matrix* (Dai, Desai,
//! Heckel & Shrivastava, SIGMOD 2021), together with the substrates it
//! depends on: count-sketch data structures, baseline sketches, workload
//! generators and an evaluation harness that regenerates every table and
//! figure of the paper.
//!
//! ## What it does
//!
//! Given a stream of samples `Y(1), …, Y(T) ∈ R^d` whose covariance (or
//! correlation) matrix is sparse, ASCS finds the large matrix entries in a
//! single pass using memory that is orders of magnitude smaller than the
//! `d(d−1)/2` unique entries. The trick over a vanilla count sketch is an
//! *active sampling* rule — after a short exploration phase, only pairs
//! whose current estimate clears a rising threshold keep being inserted,
//! which suppresses hash-collision noise and raises the signal-to-noise
//! ratio of whatever the sketch ingests.
//!
//! ## Quick start
//!
//! ```
//! use ascs::prelude::*;
//!
//! // A small planted dataset: 50 features, a few strongly correlated blocks.
//! let dataset = SimulatedDataset::new(SimulationSpec::smoke(50, 7));
//! let samples = dataset.samples(0, 2000);
//!
//! // Configure ASCS: 5 hash tables, 2000 buckets each, correlation target.
//! let config = AscsConfig {
//!     dim: 50,
//!     total_samples: samples.len() as u64,
//!     geometry: SketchGeometry::new(5, 2000),
//!     alpha: dataset.realised_alpha(),
//!     signal_strength: 0.4,
//!     sigma: 1.0,
//!     ..AscsConfig::recommended(50, samples.len() as u64, SketchGeometry::new(5, 2000))
//! };
//!
//! let mut estimator = CovarianceEstimator::new(config, SketchBackend::Ascs).unwrap();
//! for sample in &samples {
//!     estimator.process_sample(sample);
//! }
//!
//! // The planted pairs surface at the top of the report.
//! let top = estimator.top_pairs(10);
//! assert!(!top.is_empty());
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`ascs_core`] | the ASCS algorithm, streaming engine, hyperparameter solver, theory bounds |
//! | [`ascs_count_sketch`] | Count Sketch, Count-Min, Augmented Sketch, Cold Filter, top-k tracking |
//! | [`ascs_sketch_hash`] | seeded hash families used by the sketches |
//! | [`ascs_numerics`] | normal distribution functions, running moments, quantiles, histograms |
//! | [`ascs_datasets`] | simulation + surrogate workload generators |
//! | [`ascs_eval`] | exact matrices, mean-top-correlation and F1 metrics, experiment tables |
//!
//! The experiment harness that regenerates the paper's tables and figures
//! lives in the (unpublished) `ascs-bench` crate of the same workspace; see
//! EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ascs_core as core;
pub use ascs_count_sketch as count_sketch;
pub use ascs_datasets as datasets;
pub use ascs_eval as eval;
pub use ascs_numerics as numerics;
pub use ascs_sketch_hash as sketch_hash;

/// Convenience re-exports covering the common end-to-end workflow.
pub mod prelude {
    pub use ascs_core::{
        effective_sample_size, jittered_backoff, recover_with_reentry, window_span, AscsConfig,
        AscsSketch, CodecError, CovarianceEstimator, DecayedSketch, DurabilityError,
        DurabilityHealth, DurabilityOptions, EstimandKind, FaultInjector, FsyncPolicy,
        HyperParameterSolver, HyperParameters, IngestError, NoFaults, PairIndexer, PlanError,
        RecoveredState, RecoveryManager, RecoveryOutcome, RecoveryReport, ReportedPair,
        RetiredSegment, Sample, SampleGate, ServeError, ServeOptions, ServeStats, ServingEstimator,
        ServingHealth, ShardUpdate, ShardedAscs, SketchBackend, SketchGeometry, Snapshot,
        SnapshotReader, SnapshotView, TheoryBounds, ThresholdSchedule, TimeAwareSnapshotView,
        UpdateMode, WindowedSketch, WindowedSnapshotRing, MAX_SHARDS, MAX_WINDOW_SEGMENTS,
    };
    pub use ascs_count_sketch::{
        AugmentedSketch, ColdFilter, CountMinSketch, CountSketch, HashPlan, PointSketch,
        TopKTracker,
    };
    pub use ascs_datasets::{
        BootstrapResampler, CovarianceFlipStream, ShuffleBuffer, SimulatedDataset, SimulationSpec,
        SurrogateDataset, SurrogateSpec, TrillionScaleDataset, TrillionSpec,
    };
    pub use ascs_eval::{max_f1_score, mean_true_value_of_top, ExactMatrix, ExperimentTable};
}
