//! Cross-crate integration tests: full recovery pipelines from workload
//! generation through sketching to evaluation.

use ascs::prelude::*;
use std::collections::HashSet;

/// Shared small configuration used by several tests.
fn config_for(
    dim: u64,
    total: u64,
    range: usize,
    alpha: f64,
    estimand: EstimandKind,
) -> AscsConfig {
    AscsConfig {
        dim,
        total_samples: total,
        geometry: SketchGeometry::new(5, range),
        alpha,
        signal_strength: 0.5,
        sigma: 1.0,
        delta: 0.05,
        delta_star: 0.20,
        tau0: 1e-4,
        estimand,
        update_mode: UpdateMode::Product,
        seed: 1234,
        top_k_capacity: 500,
    }
}

fn run_backend(
    config: AscsConfig,
    backend: SketchBackend,
    samples: &[Sample],
) -> (Vec<u64>, CovarianceEstimator) {
    let (mut estimator, _) = CovarianceEstimator::new_or_fallback(config, backend);
    for s in samples {
        estimator.process_sample(s);
    }
    let ranked: Vec<u64> = estimator
        .top_pairs(config.top_k_capacity)
        .into_iter()
        .map(|p| p.key)
        .collect();
    (ranked, estimator)
}

#[test]
fn ascs_recovers_planted_structure_on_simulation() {
    let spec = SimulationSpec {
        dim: 120,
        alpha: 0.01,
        rho_min: 0.7,
        rho_max: 0.95,
        block_size: 5,
        seed: 7,
    };
    let dataset = SimulatedDataset::new(spec);
    let samples = dataset.samples(0, 3000);
    let signal_keys: HashSet<u64> = dataset.signal_keys().into_iter().collect();
    assert!(!signal_keys.is_empty());

    let config = config_for(
        120,
        3000,
        1000,
        dataset.realised_alpha(),
        EstimandKind::Covariance,
    );
    let (ranked, estimator) = run_backend(config, SketchBackend::Ascs, &samples);
    let f1 = max_f1_score(&ranked, &signal_keys);
    assert!(
        f1 > 0.6,
        "ASCS failed to recover the planted structure: max F1 = {f1}"
    );
    // The strongest reported pairs must be genuine signals.
    let top5_hits = ranked
        .iter()
        .take(5)
        .filter(|k| signal_keys.contains(k))
        .count();
    assert!(
        top5_hits >= 4,
        "only {top5_hits}/5 of the top pairs are real"
    );
    let (inserted, skipped) = estimator.update_counts();
    assert!(skipped > 0, "active sampling never engaged");
    assert!(inserted > 0);
}

#[test]
fn ascs_is_no_worse_than_vanilla_cs_at_moderate_memory() {
    // Section 8.3 regime: sketch memory ≈ 10 % of the number of pairs —
    // small enough that collisions matter, large enough that recovery is
    // possible (the paper notes both methods fail when the tables are
    // overcrowded and both trivially succeed when memory is generous).
    let spec = SimulationSpec {
        dim: 300,
        alpha: 0.01,
        rho_min: 0.5,
        rho_max: 0.8,
        block_size: 6,
        seed: 21,
    };
    let dataset = SimulatedDataset::new(spec);
    let samples = dataset.samples(0, 2500);
    let signal_keys: HashSet<u64> = dataset.signal_keys().into_iter().collect();
    let config = config_for(
        300,
        2500,
        (dataset.indexer().num_pairs() as f64 * 0.10 / 5.0) as usize,
        dataset.realised_alpha(),
        EstimandKind::Covariance,
    );

    let (cs_ranked, _) = run_backend(config, SketchBackend::VanillaCs, &samples);
    let (ascs_ranked, _) = run_backend(config, SketchBackend::Ascs, &samples);
    let cs_f1 = max_f1_score(&cs_ranked, &signal_keys);
    let ascs_f1 = max_f1_score(&ascs_ranked, &signal_keys);
    assert!(
        ascs_f1 >= cs_f1 - 0.03,
        "ASCS (F1 = {ascs_f1}) should not be worse than CS (F1 = {cs_f1}) at equal memory"
    );
    // The absolute level is modest in this regime (roughly a tenth of the
    // pairs carry signal-signal collisions in a majority of rows); the
    // substantive claim is the CS-vs-ASCS comparison above.
    assert!(ascs_f1 > 0.25, "ASCS F1 unexpectedly low: {ascs_f1}");
}

#[test]
fn estimates_agree_with_exact_matrix_at_generous_memory() {
    // With a sketch far larger than the number of pairs there are hardly any
    // collisions, so the sketch estimate should match the exact product-mean
    // for every pair.
    let spec = SimulationSpec::smoke(40, 3);
    let dataset = SimulatedDataset::new(spec);
    let samples = dataset.samples(0, 1500);
    let config = config_for(40, 1500, 20_000, 0.02, EstimandKind::Covariance);
    let (_, estimator) = run_backend(config, SketchBackend::VanillaCs, &samples);

    let exact = ExactMatrix::from_samples(&samples, EstimandKind::Covariance);
    let mut max_err = 0.0f64;
    for a in 0..40u64 {
        for b in (a + 1)..40u64 {
            // The sketch estimates E[Y_a Y_b]; with (near) centred features
            // that equals the covariance up to the mean product.
            let err = (estimator.estimate_pair(a, b) - exact.value(a, b)).abs();
            max_err = max_err.max(err);
        }
    }
    assert!(
        max_err < 0.12,
        "sketch estimates deviate from the exact covariance: max error {max_err}"
    );
}

#[test]
fn correlation_estimand_reports_values_near_planted_rho() {
    let spec = SimulationSpec {
        dim: 60,
        alpha: 0.02,
        rho_min: 0.8,
        rho_max: 0.8,
        block_size: 4,
        seed: 5,
    };
    let dataset = SimulatedDataset::new(spec);
    let samples = dataset.samples(0, 4000);
    let config = config_for(
        60,
        4000,
        10_000,
        dataset.realised_alpha(),
        EstimandKind::Correlation,
    );
    let (ranked, estimator) = run_backend(config, SketchBackend::Ascs, &samples);
    assert!(!ranked.is_empty());
    // The top reported pair should be a planted one and its estimate should
    // be close to the planted correlation of 0.8.
    let top = estimator.top_pairs(1)[0];
    let rho = dataset.true_correlation(top.a, top.b);
    assert!(rho > 0.0, "top pair ({}, {}) is not planted", top.a, top.b);
    assert!(
        (top.estimate - 0.8).abs() < 0.15,
        "estimated correlation {} too far from planted 0.8",
        top.estimate
    );
}

#[test]
fn all_backends_process_a_sparse_surrogate_stream() {
    let surrogate = SurrogateDataset::new(SurrogateSpec::sector().scaled(200, 800));
    let samples = surrogate.all_samples();
    let signal_keys: HashSet<u64> = surrogate.signal_keys().into_iter().collect();
    let config = config_for(
        200,
        samples.len() as u64,
        4000,
        0.01,
        EstimandKind::Correlation,
    );

    for backend in [
        SketchBackend::VanillaCs,
        SketchBackend::Ascs,
        SketchBackend::AugmentedSketch {
            filter_capacity: 64,
        },
        SketchBackend::ColdFilter {
            threshold: 1e-4,
            filter_range: 512,
        },
    ] {
        let (ranked, estimator) = run_backend(config, backend, &samples);
        assert_eq!(estimator.processed_samples(), samples.len() as u64);
        assert!(!ranked.is_empty(), "{backend:?} reported nothing");
        let f1 = max_f1_score(&ranked, &signal_keys);
        assert!(
            f1 > 0.1,
            "{backend:?} failed to find any structure (F1 = {f1})"
        );
    }
}

#[test]
fn shuffled_stream_gives_same_final_estimates_for_vanilla_cs() {
    // Vanilla CS is order-insensitive: shuffling the stream must not change
    // the final estimates (the updates are summed).
    let dataset = SimulatedDataset::new(SimulationSpec::smoke(30, 9));
    let samples = dataset.samples(0, 500);
    let shuffled = ShuffleBuffer::new(64, 4).shuffle_all(samples.clone());
    let config = config_for(30, 500, 3000, 0.02, EstimandKind::Covariance);

    let (_, est_a) = run_backend(config, SketchBackend::VanillaCs, &samples);
    let (_, est_b) = run_backend(config, SketchBackend::VanillaCs, &shuffled);
    for a in 0..30u64 {
        for b in (a + 1)..30u64 {
            let da = est_a.estimate_pair(a, b);
            let db = est_b.estimate_pair(a, b);
            assert!(
                (da - db).abs() < 1e-9,
                "order dependence detected for pair ({a},{b}): {da} vs {db}"
            );
        }
    }
}

#[test]
fn snr_probe_shows_ascs_improving_over_time() {
    let spec = SimulationSpec {
        dim: 100,
        alpha: 0.01,
        rho_min: 0.7,
        rho_max: 0.9,
        block_size: 5,
        seed: 31,
    };
    let dataset = SimulatedDataset::new(spec);
    let n = 3000;
    let samples = dataset.samples(0, n);
    let config = config_for(
        100,
        n as u64,
        800,
        dataset.realised_alpha(),
        EstimandKind::Covariance,
    );
    let (mut estimator, _) = CovarianceEstimator::new_or_fallback(config, SketchBackend::Ascs);
    estimator = estimator.with_snr_probe(dataset.signal_keys());
    for s in &samples {
        estimator.process_sample(s);
    }
    let probe = estimator.snr_probe().unwrap();
    let early = probe.windowed_snr(0, 500).expect("early window has noise");
    // If no noise at all is ingested late in the stream the improvement is
    // effectively infinite, which also passes the claim.
    if let Some(late) = probe.windowed_snr(n - 500, n) {
        assert!(
            late > 2.0 * early,
            "SNR should grow substantially: early {early}, late {late}"
        );
    }
}
