//! Sketch lifecycle: versioned checkpoint/restore and cross-process merge.
//!
//! The codec contract under test:
//!
//! * **Round trips are exact.** `save` → `restore` reproduces sketch tables,
//!   counters, trackers and estimates bit for bit, including non-finite
//!   table values, and a restored sketch *continues the stream* exactly as
//!   the original would have.
//! * **Restore never panics.** Truncated input, flipped header bytes, a
//!   bumped format version and corrupt payload fields all surface as typed
//!   [`CodecError`] variants.
//! * **Merges are checked.** Restoring into an incompatible receiver
//!   (different seed, geometry or backend) is a typed error, not silent
//!   corruption.
//!
//! The companion merge-equals-sequential equivalence proofs live in
//! `tests/ingestion_equivalence.rs`; this file owns the codec surface.

use ascs::prelude::*;
use proptest::prelude::*;

fn hyper(t0: u64, theta: f64, tau0: f64) -> HyperParameters {
    HyperParameters {
        t0,
        theta,
        tau0,
        delta: 0.05,
        delta_star: 0.2,
    }
}

fn base_config(dim: u64, total: u64, seed: u64) -> AscsConfig {
    AscsConfig {
        dim,
        total_samples: total,
        geometry: SketchGeometry::new(5, 2048),
        alpha: 0.05,
        signal_strength: 0.5,
        sigma: 1.0,
        delta: 0.05,
        delta_star: 0.20,
        tau0: 1e-3,
        estimand: EstimandKind::Covariance,
        update_mode: UpdateMode::Product,
        seed,
        top_k_capacity: 32,
    }
}

/// Deterministic dyadic sample stream (values in {-1, -0.5, 0, 0.5, 1}).
fn dyadic_samples(dim: u64, total: u64, salt: u64) -> Vec<Sample> {
    (1..=total)
        .map(|t| {
            let values: Vec<f64> = (0..dim)
                .map(|f| ((t * 31 + f * 7 + salt) % 5) as f64 * 0.5 - 1.0)
                .collect();
            Sample::dense(values)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Count sketch round trips reproduce the table bit for bit across
    /// random geometries — including more rows than a hash plan supports
    /// ([`MAX_ROWS`] = 16), empty sketches, and non-finite table values —
    /// and every post-restore estimate matches the original exactly.
    #[test]
    fn count_sketch_roundtrip_is_bit_identical(
        rows in 1usize..20,
        range in 1usize..256,
        seed in 0u64..1000,
        updates in proptest::collection::vec((0u64..256, -8.0f64..8.0), 0..200),
        poison in proptest::bool::ANY,
    ) {
        let mut cs = CountSketch::new(rows, range, seed);
        for &(key, w) in &updates {
            cs.update(key, w);
        }
        if poison {
            // Non-finite values must survive the trip through `to_bits`.
            cs.update(3, f64::INFINITY);
            cs.update(5, f64::NEG_INFINITY);
            cs.update(7, f64::NAN);
        }
        let mut bytes = Vec::new();
        cs.save(&mut bytes).unwrap();
        let back = CountSketch::restore(&mut bytes.as_slice()).unwrap();
        prop_assert_eq!(back.rows(), cs.rows());
        prop_assert_eq!(back.range(), cs.range());
        prop_assert_eq!(back.update_count(), cs.update_count());
        prop_assert!(
            cs.table().iter().zip(back.table()).all(|(a, b)| a.to_bits() == b.to_bits()),
            "restored table diverged"
        );
        for key in 0..256u64 {
            prop_assert_eq!(cs.estimate(key).to_bits(), back.estimate(key).to_bits());
        }
    }

    /// Top-k tracker round trips preserve capacity, offer count, admission
    /// bar behaviour and the reported descending order exactly.
    #[test]
    fn tracker_roundtrip_preserves_report_and_admission_state(
        capacity in 1usize..24,
        offers in proptest::collection::vec((0u64..64, -4.0f64..4.0), 0..200),
    ) {
        let mut tracker = TopKTracker::new(capacity);
        for &(key, v) in &offers {
            tracker.offer(key, v.abs());
        }
        let mut bytes = Vec::new();
        tracker.save(&mut bytes).unwrap();
        let mut back = TopKTracker::restore(&mut bytes.as_slice()).unwrap();
        prop_assert_eq!(back.capacity(), tracker.capacity());
        prop_assert_eq!(back.offers(), tracker.offers());
        prop_assert_eq!(back.descending(), tracker.descending());
        // The admission bar survived: identical future offers decide alike.
        for probe in [(999u64, 0.0), (998, 0.5), (997, 10.0)] {
            tracker.offer(probe.0, probe.1);
            back.offer(probe.0, probe.1);
            prop_assert_eq!(back.descending(), tracker.descending());
        }
    }

    /// A restored ASCS sketch continues the stream bit-identically: same
    /// gate decisions, tables, counters and tracker report as the original
    /// that never stopped.
    #[test]
    fn restored_ascs_continues_stream_bit_identically(
        range in 8usize..512,
        total in 32u64..200,
        t0_frac in 0.05f64..1.0,
        theta in 0.0f64..0.5,
        seed in 0u64..1000,
        updates in proptest::collection::vec((0u64..64, -2.0f64..2.0), 2..200),
    ) {
        let t0 = ((total as f64 * t0_frac) as u64).clamp(1, total);
        let hp = hyper(t0, theta, 1e-3);
        let geometry = SketchGeometry::new(5, range);
        let mut original = AscsSketch::new(geometry, &hp, total, 16, seed);
        let split = updates.len() / 2;
        for (i, &(key, x)) in updates[..split].iter().enumerate() {
            original.offer(key, x, (i as u64 % total) + 1);
        }
        let mut bytes = Vec::new();
        original.save(&mut bytes).unwrap();
        let mut resumed = AscsSketch::restore(&mut bytes.as_slice()).unwrap();
        for (i, &(key, x)) in updates[split..].iter().enumerate() {
            let t = ((split + i) as u64 % total) + 1;
            let a = original.offer(key, x, t);
            let b = resumed.offer(key, x, t);
            prop_assert_eq!(a, b, "offer outcome diverged after resume");
        }
        prop_assert!(
            original
                .sketch()
                .table()
                .iter()
                .zip(resumed.sketch().table())
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "tables diverged after resume"
        );
        prop_assert_eq!(original.inserted_updates(), resumed.inserted_updates());
        prop_assert_eq!(original.skipped_updates(), resumed.skipped_updates());
        prop_assert_eq!(original.top_pairs(), resumed.top_pairs());
    }

    /// Every strict prefix of a record is reported as truncated — never a
    /// panic, never a silent partial restore.
    #[test]
    fn every_truncation_of_an_ascs_record_is_typed(
        seed in 0u64..200,
        updates in proptest::collection::vec((0u64..32, -2.0f64..2.0), 1..60),
    ) {
        let hp = hyper(8, 0.3, 1e-3);
        let mut sketch = AscsSketch::new(SketchGeometry::new(2, 8), &hp, 64, 4, seed);
        for (i, &(key, x)) in updates.iter().enumerate() {
            sketch.offer(key, x, (i as u64 % 64) + 1);
        }
        let mut bytes = Vec::new();
        sketch.save(&mut bytes).unwrap();
        for cut in 0..bytes.len() {
            match AscsSketch::restore(&mut &bytes[..cut]) {
                Err(CodecError::Truncated) => {}
                Err(other) => prop_assert!(false, "cut {} gave {:?}", cut, other),
                Ok(_) => prop_assert!(false, "cut {} restored successfully", cut),
            }
        }
    }
}

#[test]
fn header_corruption_is_detected_per_field() {
    let mut cs = CountSketch::new(3, 64, 42);
    cs.update(1, 1.5);
    let mut bytes = Vec::new();
    cs.save(&mut bytes).unwrap();

    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        CountSketch::restore(&mut bad_magic.as_slice()),
        Err(CodecError::BadMagic(_))
    ));

    // A future format version is refused outright (no migration policy).
    let mut bumped = bytes.clone();
    bumped[4] = 2;
    assert!(matches!(
        CountSketch::restore(&mut bumped.as_slice()),
        Err(CodecError::UnsupportedVersion(2))
    ));

    // Restoring the wrong record type is refused by tag.
    assert!(matches!(
        AscsSketch::restore(&mut bytes.as_slice()),
        Err(CodecError::WrongRecord { .. })
    ));
}

#[test]
fn corrupt_payload_fields_are_typed_not_panics() {
    let hp = hyper(8, 0.2, 1e-3);
    let mut sketch = AscsSketch::new(SketchGeometry::new(3, 32), &hp, 64, 8, 7);
    for t in 1..=40u64 {
        sketch.offer(t % 16, 0.5, t);
    }
    let mut bytes = Vec::new();
    sketch.save(&mut bytes).unwrap();
    // Flipping any single byte must never panic; it either restores to
    // some valid state (a flipped table bit is indistinguishable from a
    // different stream) or surfaces a typed error.
    for i in 0..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0x41;
        let _ = AscsSketch::restore(&mut corrupt.as_slice());
    }
    // A corrupted stream length (t0 > total) is caught by validation.
    let mut bad = bytes.clone();
    // Header is 7 bytes; t0 (u64) then total (u64) follow.
    bad[7..15].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(matches!(
        AscsSketch::restore(&mut bad.as_slice()),
        Err(CodecError::Corrupt(_))
    ));
}

#[test]
fn sharded_roundtrip_restores_workers_and_router() {
    let hp = hyper(16, 0.3, 1e-3);
    let geometry = SketchGeometry::new(5, 128);
    let mut sharded = ShardedAscs::new(geometry, &hp, 128, 16, 11, 3).with_parallel_threshold(1);
    let batch: Vec<ShardUpdate> = (0..200u64)
        .map(|i| ShardUpdate {
            key: i % 48,
            value: f64::from((i % 7) as i32 - 3) * 0.25,
            t: (i % 128) + 1,
        })
        .collect();
    sharded.offer_batch(&batch);

    let mut bytes = Vec::new();
    sharded.save(&mut bytes).unwrap();
    let mut back = ShardedAscs::restore(&mut bytes.as_slice()).unwrap();
    assert_eq!(back.workers().len(), sharded.workers().len());
    assert_eq!(back.inserted_updates(), sharded.inserted_updates());
    assert_eq!(back.skipped_updates(), sharded.skipped_updates());
    for key in 0..48u64 {
        assert_eq!(
            back.estimate(key).to_bits(),
            sharded.estimate(key).to_bits()
        );
    }
    assert_eq!(back.top_pairs(), sharded.top_pairs());

    // The restored shard set keeps ingesting identically.
    let more: Vec<ShardUpdate> = (0..60u64)
        .map(|i| ShardUpdate {
            key: (i * 5) % 48,
            value: 0.5,
            t: (i % 128) + 1,
        })
        .collect();
    sharded.offer_batch(&more);
    back.offer_batch(&more);
    for key in 0..48u64 {
        assert_eq!(
            back.estimate(key).to_bits(),
            sharded.estimate(key).to_bits()
        );
    }

    // Truncations of the nested record stack are typed.
    for cut in [0, 3, 6, 10, 40, bytes.len() / 2, bytes.len() - 1] {
        assert!(matches!(
            ShardedAscs::restore(&mut &bytes[..cut]),
            Err(CodecError::Truncated)
        ));
    }
}

#[test]
fn estimator_resume_is_bit_identical_for_every_cs_backend() {
    let dim = 24u64;
    let total = 64u64;
    let samples = dyadic_samples(dim, total, 0);
    for backend in [
        SketchBackend::Ascs,
        SketchBackend::VanillaCs,
        SketchBackend::ShardedAscs { shards: 3 },
    ] {
        let config = base_config(dim, total, 21);
        let hp = Some(hyper(8, 0.25, 1e-3));
        let mut uninterrupted = CovarianceEstimator::with_hyperparameters(config, backend, hp);
        let mut front = CovarianceEstimator::with_hyperparameters(config, backend, hp);
        let half = samples.len() / 2;
        for s in &samples {
            uninterrupted.process_sample(s);
        }
        for s in &samples[..half] {
            front.process_sample(s);
        }
        let mut bytes = Vec::new();
        front.checkpoint(&mut bytes).unwrap();
        let mut resumed = CovarianceEstimator::resume(&mut bytes.as_slice()).unwrap();
        for s in &samples[half..] {
            resumed.process_sample(s);
        }
        assert_eq!(
            resumed.processed_samples(),
            uninterrupted.processed_samples()
        );
        assert_eq!(resumed.update_counts(), uninterrupted.update_counts());
        let (a, b) = (uninterrupted.all_estimates(), resumed.all_estimates());
        assert!(
            a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()),
            "{backend:?}: resumed estimates diverged from the uninterrupted run"
        );
        // Every checkpoint cut must be typed, never a panic.
        for cut in [0, 5, 6, 20, bytes.len() / 3, bytes.len() - 1] {
            assert!(matches!(
                CovarianceEstimator::resume(&mut &bytes[..cut]),
                Err(CodecError::Truncated)
            ));
        }
    }
}

#[test]
fn planned_estimator_resumes_bit_identically_without_the_plan() {
    // The plan arena is deliberately not serialized (it is pure derived
    // state); a resumed estimator runs the hashed path, which is already
    // proven bit-identical to the planned path — and can re-attach a plan.
    let dim = 24u64;
    let total = 64u64;
    let samples = dyadic_samples(dim, total, 3);
    let config = base_config(dim, total, 9);
    let mut planned = CovarianceEstimator::new(config, SketchBackend::VanillaCs)
        .unwrap()
        .with_ingestion_plan()
        .unwrap();
    let mut front = CovarianceEstimator::new(config, SketchBackend::VanillaCs)
        .unwrap()
        .with_ingestion_plan()
        .unwrap();
    let half = samples.len() / 2;
    for s in &samples {
        planned.process_sample(s);
    }
    for s in &samples[..half] {
        front.process_sample(s);
    }
    let mut bytes = Vec::new();
    front.checkpoint(&mut bytes).unwrap();
    let mut resumed = CovarianceEstimator::resume(&mut bytes.as_slice()).unwrap();
    assert!(resumed.ingestion_plan().is_none());
    resumed
        .attach_ingestion_plan()
        .expect("plan re-attaches after resume");
    for s in &samples[half..] {
        resumed.process_sample(s);
    }
    let (a, b) = (planned.all_estimates(), resumed.all_estimates());
    assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
}

#[test]
fn filter_backends_refuse_to_checkpoint_with_a_typed_error() {
    let config = base_config(16, 64, 5);
    let est = CovarianceEstimator::new(
        config,
        SketchBackend::AugmentedSketch {
            filter_capacity: 16,
        },
    )
    .unwrap();
    let mut bytes = Vec::new();
    assert!(matches!(
        est.checkpoint(&mut bytes),
        Err(CodecError::Unsupported(_))
    ));
}

#[test]
fn merging_incompatible_checkpoints_is_a_typed_error() {
    let geometry = SketchGeometry::new(4, 64);
    let mut a = AscsSketch::vanilla(geometry, 64, 8, 1);
    let mut b_seed = AscsSketch::vanilla(geometry, 64, 8, 2);
    let mut b_total = AscsSketch::vanilla(geometry, 128, 8, 1);
    let mut b_geom = AscsSketch::vanilla(SketchGeometry::new(4, 128), 64, 8, 1);
    for t in 1..=32u64 {
        for s in [&mut a, &mut b_seed, &mut b_total, &mut b_geom] {
            s.offer(t % 8, 0.25, t.min(64));
        }
    }
    for other in [&b_seed, &b_total, &b_geom] {
        let mut bytes = Vec::new();
        other.save(&mut bytes).unwrap();
        let before: Vec<u64> = a.sketch().table().iter().map(|v| v.to_bits()).collect();
        assert!(matches!(
            a.merge_from_checkpoint(&mut bytes.as_slice()),
            Err(CodecError::Incompatible(_))
        ));
        // A refused merge must leave the receiver untouched.
        let after: Vec<u64> = a.sketch().table().iter().map(|v| v.to_bits()).collect();
        assert_eq!(before, after);
    }

    // Estimator-level: a checkpoint from a different configuration or
    // backend kind is refused.
    let samples = dyadic_samples(16, 64, 1);
    let config = base_config(16, 64, 5);
    let mut other_config = config;
    other_config.seed = 6;
    let mut left = CovarianceEstimator::new(config, SketchBackend::VanillaCs).unwrap();
    let mut right = CovarianceEstimator::new(other_config, SketchBackend::VanillaCs).unwrap();
    let mut wrong_kind = CovarianceEstimator::with_hyperparameters(
        config,
        SketchBackend::Ascs,
        Some(hyper(8, 0.2, 1e-3)),
    );
    for s in &samples[..32] {
        left.process_sample(s);
        right.process_sample(s);
        wrong_kind.process_sample(s);
    }
    for bad in [&right, &wrong_kind] {
        let mut bytes = Vec::new();
        bad.checkpoint(&mut bytes).unwrap();
        assert!(matches!(
            left.merge_from_checkpoint(&mut bytes.as_slice()),
            Err(CodecError::Incompatible(_))
        ));
    }
}

/// **Segment-ring codec round trip.** A windowed sketch saved mid-window
/// (head segment partially filled) restores to bit-identical state and
/// *continues the stream* exactly like the original — rotations, retires
/// and estimates alike. Same for the decayed generation stack.
#[test]
fn time_aware_sketch_roundtrips_continue_the_stream_bit_identically() {
    let total = 300u64;
    let split = 137u64; // mid-block for segment_len 16 — not a boundary
    let mut win = WindowedSketch::new(3, 128, 13, 16, 4);
    let mut dec = DecayedSketch::new(3, 128, 13, 0.97);
    let feed = |w: &mut WindowedSketch, d: &mut DecayedSketch, t: u64| {
        let _ = w.begin_sample();
        d.begin_sample();
        for key in 0..10u64 {
            let u = ((t * 11 + key * 3) % 9) as f64 * 0.25 - 1.0;
            w.ingest(key, u);
            d.ingest(key, u);
        }
    };
    for t in 1..=split {
        feed(&mut win, &mut dec, t);
    }
    let mut win_bytes = Vec::new();
    let mut dec_bytes = Vec::new();
    win.save(&mut win_bytes).unwrap();
    dec.save(&mut dec_bytes).unwrap();
    let mut win_back = WindowedSketch::restore(&mut win_bytes.as_slice()).unwrap();
    let mut dec_back = DecayedSketch::restore(&mut dec_bytes.as_slice()).unwrap();
    assert_eq!(win_back.t(), win.t());
    assert_eq!(win_back.window_span(), win.window_span());
    assert_eq!(win_back.retired_segments(), win.retired_segments());
    assert_eq!(dec_back.t(), dec.t());
    assert_eq!(dec_back.generation_count(), dec.generation_count());
    assert_eq!(dec_back.table_write_ops(), dec.table_write_ops());
    for key in 0..64u64 {
        assert_eq!(
            win_back.estimate(key).to_bits(),
            win.estimate(key).to_bits()
        );
        assert_eq!(
            dec_back.estimate(key).to_bits(),
            dec.estimate(key).to_bits()
        );
    }
    // The restored sketches keep rotating/retiring in lockstep with the
    // originals across several further block boundaries.
    for t in split + 1..=total {
        feed(&mut win, &mut dec, t);
        feed(&mut win_back, &mut dec_back, t);
    }
    assert_eq!(win_back.retired_segments(), win.retired_segments());
    assert_eq!(dec_back.rotations(), dec.rotations());
    for key in 0..64u64 {
        assert_eq!(
            win_back.estimate(key).to_bits(),
            win.estimate(key).to_bits(),
            "windowed estimate diverged after resume at key {key}"
        );
        assert_eq!(
            dec_back.estimate(key).to_bits(),
            dec.estimate(key).to_bits(),
            "decayed estimate diverged after resume at key {key}"
        );
    }
}

/// Every strict prefix of a windowed, decayed or retired-segment record is
/// a typed [`CodecError::Truncated`]; every single-byte corruption is a
/// typed error or a valid restore — never a panic. Header corruptions are
/// detected per field, and mismatched record tags are refused.
#[test]
fn time_aware_records_survive_the_truncation_and_corruption_sweep() {
    let mut win = WindowedSketch::new(2, 16, 5, 4, 3);
    let mut dec = DecayedSketch::new(2, 16, 5, 0.9);
    let mut retired = None;
    for t in 1..=20u64 {
        if let Some(seg) = win.begin_sample() {
            retired = Some(seg);
        }
        dec.begin_sample();
        for key in 0..6u64 {
            let u = ((t + key) % 5) as f64 * 0.5 - 1.0;
            win.ingest(key, u);
            dec.ingest(key, u);
        }
    }
    let retired = retired.expect("20 samples at 4×3 must retire a segment");
    let mut win_bytes = Vec::new();
    let mut dec_bytes = Vec::new();
    let mut seg_bytes = Vec::new();
    win.save(&mut win_bytes).unwrap();
    dec.save(&mut dec_bytes).unwrap();
    retired.save(&mut seg_bytes).unwrap();

    for cut in 0..win_bytes.len() {
        assert!(
            matches!(
                WindowedSketch::restore(&mut &win_bytes[..cut]),
                Err(CodecError::Truncated)
            ),
            "windowed cut {cut} was not typed as truncation"
        );
    }
    for cut in 0..dec_bytes.len() {
        assert!(
            matches!(
                DecayedSketch::restore(&mut &dec_bytes[..cut]),
                Err(CodecError::Truncated)
            ),
            "decayed cut {cut} was not typed as truncation"
        );
    }
    for cut in 0..seg_bytes.len() {
        assert!(
            matches!(
                RetiredSegment::restore(&mut &seg_bytes[..cut]),
                Err(CodecError::Truncated)
            ),
            "segment cut {cut} was not typed as truncation"
        );
    }

    // Single-byte XOR over every record: typed error or valid restore,
    // never a panic.
    for bytes in [&win_bytes, &dec_bytes, &seg_bytes] {
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x41;
            let _ = WindowedSketch::restore(&mut corrupt.as_slice());
            let _ = DecayedSketch::restore(&mut corrupt.as_slice());
            let _ = RetiredSegment::restore(&mut corrupt.as_slice());
        }
    }

    // Header field checks: magic, future version, record-tag confusion.
    let mut bad_magic = win_bytes.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        WindowedSketch::restore(&mut bad_magic.as_slice()),
        Err(CodecError::BadMagic(_))
    ));
    let mut bumped = dec_bytes.clone();
    bumped[4] = 2;
    assert!(matches!(
        DecayedSketch::restore(&mut bumped.as_slice()),
        Err(CodecError::UnsupportedVersion(2))
    ));
    assert!(matches!(
        WindowedSketch::restore(&mut dec_bytes.as_slice()),
        Err(CodecError::WrongRecord { .. })
    ));
    assert!(matches!(
        DecayedSketch::restore(&mut seg_bytes.as_slice()),
        Err(CodecError::WrongRecord { .. })
    ));
    assert!(matches!(
        RetiredSegment::restore(&mut win_bytes.as_slice()),
        Err(CodecError::WrongRecord { .. })
    ));

    // Key-partition merges demand identical clocks: a ring two samples
    // behind is refused, and the refusal leaves the receiver untouched.
    let stale = WindowedSketch::restore(&mut win_bytes.as_slice()).unwrap();
    let _ = win.begin_sample();
    let before: Vec<u64> = win
        .merged_sketch()
        .table()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert!(matches!(
        win.merge_restored(&stale),
        Err(CodecError::Incompatible(_))
    ));
    let after: Vec<u64> = win
        .merged_sketch()
        .table()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(before, after, "refused merge mutated the receiver");
}

/// **Estimator checkpoint → resume, mid-window.** Both time-aware
/// backends checkpoint at a stream time that is *not* a segment boundary
/// and resume bit-identically through further retires/rotations — the
/// whole ring (head fill level included) survives the trip. Truncated
/// checkpoints stay typed.
#[test]
fn estimator_resume_is_bit_identical_for_time_aware_backends() {
    let dim = 24u64;
    let total = 128u64;
    let samples = dyadic_samples(dim, total, 5);
    for backend in [
        SketchBackend::Windowed {
            segment_len: 16,
            segments: 4,
        },
        SketchBackend::Decayed { gamma: 0.96 },
    ] {
        let config = base_config(dim, total, 33);
        let mut uninterrupted = CovarianceEstimator::with_hyperparameters(config, backend, None);
        let mut front = CovarianceEstimator::with_hyperparameters(config, backend, None);
        let split = 71usize; // mid-block for segment_len 16
        for s in &samples {
            uninterrupted.process_sample(s);
        }
        for s in &samples[..split] {
            front.process_sample(s);
        }
        let mut bytes = Vec::new();
        front.checkpoint(&mut bytes).unwrap();
        let mut resumed = CovarianceEstimator::resume(&mut bytes.as_slice()).unwrap();
        for s in &samples[split..] {
            resumed.process_sample(s);
        }
        assert_eq!(
            resumed.processed_samples(),
            uninterrupted.processed_samples()
        );
        assert_eq!(resumed.update_counts(), uninterrupted.update_counts());
        let (a, b) = (uninterrupted.all_estimates(), resumed.all_estimates());
        assert!(
            a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()),
            "{backend:?}: resumed estimates diverged from the uninterrupted run"
        );
        for cut in [0, 5, 6, 20, bytes.len() / 3, bytes.len() - 1] {
            assert!(matches!(
                CovarianceEstimator::resume(&mut &bytes[..cut]),
                Err(CodecError::Truncated)
            ));
        }
        // Time-split merges of time-aware backends are semantically
        // impossible (segments would interleave) — typed, not silent.
        let mut other_bytes = Vec::new();
        uninterrupted.checkpoint(&mut other_bytes).unwrap();
        assert!(matches!(
            resumed.merge_from_checkpoint(&mut other_bytes.as_slice()),
            Err(CodecError::Unsupported(_))
        ));
    }
}

#[test]
fn sharded_shard_count_is_validated_up_front() {
    // Satellite regression: `new`/`vanilla` reject oversized shard counts
    // with a clear message instead of failing later in the slot router.
    let result = std::panic::catch_unwind(|| {
        ShardedAscs::vanilla(SketchGeometry::new(2, 16), 64, 4, 1, MAX_SHARDS + 1)
    });
    let msg = *result
        .expect_err("construction must panic")
        .downcast::<String>()
        .unwrap();
    assert!(msg.contains("at most 256 shards"), "message was: {msg}");
}

/// Count-min rejects negative weights in **release** builds too — this
/// suite runs under `cargo test --release` in CI precisely to prove the
/// check is not a `debug_assert!`.
#[test]
#[should_panic(expected = "non-negative")]
fn count_min_rejects_negative_weights_in_release_builds() {
    let mut cm = CountMinSketch::new(3, 64, 1);
    cm.update(1, 1.0);
    cm.update(2, -0.5);
}

/// Satellite of the durability PR: the single-byte-XOR sweep, extended
/// from in-memory records to the on-disk durability artifacts. Every byte
/// of every WAL segment, checkpoint shard and manifest is flipped in turn;
/// recovery must never panic and never restore silently wrong state —
/// CRC32 framing detects each flip, falls back (previous generation, torn
/// WAL tail) and still reconstructs the full stream bit-identically from
/// the redundant artifacts.
#[test]
fn single_byte_corruption_of_durability_files_is_always_detected() {
    use ascs_testkit::ReplayOracle;
    use std::path::PathBuf;

    let dim = 8u64;
    let total = 24u64;
    let mut cfg = base_config(dim, total, 77);
    cfg.geometry = SketchGeometry::new(2, 32);
    cfg.top_k_capacity = 8;
    let hp = hyper(6, 0.25, 1e-3);
    let samples = dyadic_samples(dim, total, 9);

    let dir = std::env::temp_dir().join(format!("ascs-xor-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = ServeOptions {
        shards: 2,
        ..ServeOptions::default()
    };
    let mut serving = ServingEstimator::launch_durable(
        cfg,
        Some(hp),
        opts,
        DurabilityOptions {
            checkpoint_every: 8,
            wal_segment_records: 8,
            ..DurabilityOptions::new(&dir)
        },
    )
    .expect("durable launch failed");
    for s in &samples {
        serving.ingest_blocking(s).expect("ingest failed");
    }
    serving.simulate_crash();

    let mut oracle = ReplayOracle::new(&cfg, Some(&hp), 2);
    for s in &samples {
        oracle.ingest(s);
    }
    let truth: Vec<u64> = oracle
        .merged_sketch()
        .table()
        .iter()
        .map(|v| v.to_bits())
        .collect();

    // Snapshot the pristine directory: recovery deletes files it deems
    // torn, so every iteration restores the full artifact set.
    let pristine: Vec<(PathBuf, Vec<u8>)> = {
        let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        files.sort();
        files
            .into_iter()
            .map(|p| {
                let bytes = std::fs::read(&p).unwrap();
                (p, bytes)
            })
            .collect()
    };
    let names: Vec<String> = pristine
        .iter()
        .map(|(p, _)| p.file_name().unwrap().to_string_lossy().into_owned())
        .collect();
    assert!(
        names.iter().any(|n| n.starts_with("wal-"))
            && names.iter().any(|n| n.ends_with(".manifest"))
            && names.iter().any(|n| n.contains(".shard")),
        "sweep surface incomplete: {names:?}"
    );

    let restore_all = |skip: Option<&PathBuf>| {
        for (path, bytes) in &pristine {
            if Some(path) != skip {
                std::fs::write(path, bytes).unwrap();
            }
        }
    };

    let mut swept = 0usize;
    for (path, bytes) in &pristine {
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x41;
            std::fs::write(path, &corrupt).unwrap();
            let outcome = RecoveryManager::new(&dir)
                .recover(&cfg, Some(&hp), 2)
                .unwrap_or_else(|e| panic!("{path:?} byte {i}: fatal error {e}"));
            // Redundancy (previous generation + retained WAL) must absorb
            // any single corrupted byte: full epoch, bit-identical state.
            assert_eq!(
                outcome.state.epoch(),
                total,
                "{path:?} byte {i}: lost stream prefix: {}",
                outcome.report
            );
            let recovered: Vec<u64> = outcome
                .state
                .merged_sketch()
                .table()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(
                recovered, truth,
                "{path:?} byte {i}: recovered state diverged"
            );
            restore_all(None);
            swept += 1;
        }
    }
    assert!(swept > 1000, "sweep covered only {swept} bytes");
    std::fs::remove_dir_all(&dir).unwrap();
}
