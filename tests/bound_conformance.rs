//! Tier-1 bound-conformance harness: every committed stress scenario ×
//! every count-sketch-family backend must clear the Theorem 1/2 error
//! budgets, deterministically, from the committed seeds.
//!
//! * The **quick profile** runs on every `cargo test` (and every CI push):
//!   6 scenarios × 6 backends (vanilla CS, gated ASCS, plan-driven ASCS,
//!   sharded ASCS, windowed CS, decayed CS) × 2 seeded trials.
//! * The **deep profile** is `#[ignore]`-gated (run with
//!   `cargo test --release --test bound_conformance -- --ignored`, as the
//!   scheduled CI job does): larger dimensionality, longer streams, more
//!   trials, plus the planned sharded backend.
//!
//! Every future performance PR must keep this suite green: the gates are
//! the standing empirical statement of what the Theorems promise, so a
//! "fast" path that quietly degrades accuracy fails here even when the
//! bit-identity harnesses are not exercised by its workload.

use ascs_testkit::{
    deep_suite, quick_suite, run_scenario, BackendVariant, ConformanceConfig, ScenarioReport,
};

/// Renders the failing gates of a report for the assertion message.
fn failure_summary(report: &ScenarioReport) -> String {
    let mut out = String::new();
    for backend in &report.backends {
        for ck in &backend.checkpoints {
            for gate in &ck.gates {
                if gate.enforced && !gate.passed {
                    out.push_str(&format!(
                        "\n  {} / {} @ t={}: {} quantile {:.6} > budget {:.6} ({} samples)",
                        report.scenario,
                        backend.backend,
                        ck.t,
                        gate.name,
                        gate.observed_quantile,
                        gate.budget,
                        gate.samples
                    ));
                }
            }
        }
    }
    out
}

fn assert_conforms(suite: Vec<Box<dyn ascs_testkit::Scenario>>, cfg: &ConformanceConfig) {
    assert!(suite.len() >= 6, "the catalogue shrank below six scenarios");
    for scenario in &suite {
        let report = run_scenario(scenario.as_ref(), cfg);
        assert_eq!(report.backends.len(), cfg.backends.len());
        assert!(
            report.passed,
            "scenario '{}' failed its enforced gates:{}",
            report.scenario,
            failure_summary(&report)
        );
        for backend in &report.backends {
            // Every cell must actually have scored something.
            for ck in &backend.checkpoints {
                assert!(ck.gates.iter().all(|g| g.samples > 0 || !g.enforced));
                assert!(
                    ck.signal_pair_count > 0,
                    "{}: empty signal set",
                    report.scenario
                );
            }
        }
    }
}

#[test]
fn quick_profile_all_scenarios_conform_on_all_cs_family_backends() {
    let cfg = ConformanceConfig::quick();
    // The acceptance contract: vanilla, gated, planned and sharded paths
    // all face the same gates.
    let labels: Vec<String> = cfg.backends.iter().map(BackendVariant::label).collect();
    for expected in [
        "vanilla_cs",
        "ascs",
        "ascs_planned",
        "sharded_ascs_2",
        "windowed_cs",
        "decayed_cs",
    ] {
        assert!(labels.iter().any(|l| l == expected), "missing {expected}");
    }
    assert_conforms(quick_suite(), &cfg);
}

/// The drift-conformance contract of this repo's time-aware backends: on
/// the `covariance_flip` scenario the windowed backend's post-flip gate
/// over drift-emergent signals is **enforced** (not a diagnostic) and
/// passes, while phase A stays quiet (no emergent pool at the pre-flip
/// checkpoint).
#[test]
fn windowed_backend_enforces_the_drift_emergent_gate() {
    let cfg = ConformanceConfig::quick();
    let suite = quick_suite();
    let flip = suite
        .iter()
        .find(|s| s.profile().name == "covariance_flip")
        .expect("covariance_flip missing from the quick suite");
    let report = run_scenario(flip.as_ref(), &cfg);
    let windowed = report
        .backends
        .iter()
        .find(|b| b.backend == "windowed_cs")
        .expect("windowed backend missing from the quick profile");
    assert!(windowed.passed, "windowed_cs failed: {windowed:?}");
    let post_flip = windowed
        .checkpoints
        .last()
        .expect("covariance_flip has two checkpoints");
    let emergent = post_flip
        .gates
        .iter()
        .find(|g| g.name == "emergent_signal_pairs")
        .expect("post-flip window must surface emergent signals");
    assert!(
        emergent.enforced && emergent.passed,
        "windowed emergent gate must be enforced and green: {emergent:?}"
    );
    assert!(
        !windowed.checkpoints[0]
            .gates
            .iter()
            .any(|g| g.name == "emergent_signal_pairs"),
        "pre-flip window must not see emergent signals"
    );
    // Cumulative backends keep the diagnostic unenforced.
    let vanilla = report
        .backends
        .iter()
        .find(|b| b.backend == "vanilla_cs")
        .expect("vanilla backend missing");
    for ck in &vanilla.checkpoints {
        for g in &ck.gates {
            if g.name == "emergent_signal_pairs" {
                assert!(!g.enforced, "cumulative emergent gate must stay diagnostic");
            }
        }
    }
}

/// The quick profile is deterministic: two full runs of a scenario —
/// including its sharded backend, whose batch routing must not depend on
/// thread scheduling — produce byte-identical reports.
#[test]
fn quick_profile_reports_are_deterministic() {
    let cfg = ConformanceConfig::quick();
    let suite_a = quick_suite();
    let suite_b = quick_suite();
    // The adversarial scenario re-runs its hash-seed search per trial, so
    // it is the strongest determinism probe in the catalogue.
    let a = run_scenario(suite_a[5].as_ref(), &cfg);
    let b = run_scenario(suite_b[5].as_ref(), &cfg);
    assert_eq!(a, b, "adversarial conformance reports diverged");
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
}

#[test]
#[ignore = "deep profile — minutes, run explicitly or from the scheduled CI job"]
fn deep_profile_all_scenarios_conform() {
    assert_conforms(deep_suite(), &ConformanceConfig::deep());
}
