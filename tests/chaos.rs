//! Tier-1 chaos-harness tests: seeded schedules hold the standing
//! invariants end to end, the recovery re-entry budget is a typed bound,
//! re-armable triggers drive real crash loops, and a deliberately planted
//! sabotage fault is (a) caught by the invariant oracle and (b) shrunk to
//! a minimal reproducing schedule.

use ascs::core::codec::FaultSiteRegistry;
use ascs::prelude::*;
use ascs_testkit::chaos::{run_schedule, ChaosFault, ChaosOptions, ChaosSchedule};
use ascs_testkit::{shrink, FaultFs, FaultPlan, Trigger};
use std::sync::Arc;
use std::time::Duration;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ascs-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn seeded_chaos_schedules_hold_every_standing_invariant() {
    let opts = ChaosOptions::default();
    let registry = Arc::new(FaultSiteRegistry::new());
    // Four consecutive seeds cover the kill-plan residues: plain kill,
    // corruption, crash-during-recovery, and corruption + crash combined.
    for seed in 40..44 {
        let schedule = ChaosSchedule::generate(seed, &opts);
        let dir = temp_dir(&format!("invariants-{seed}"));
        let report = run_schedule(&schedule, &opts, &registry, &dir)
            .unwrap_or_else(|v| panic!("{v}\n{}", schedule.describe()));
        assert_eq!(report.seed, seed);
        assert_eq!(report.final_epoch, opts.total_samples);
        assert!(report.invariant_checks > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn planted_sabotage_is_caught_and_shrinks_to_a_minimal_schedule() {
    let opts = ChaosOptions::default();
    let registry = Arc::new(FaultSiteRegistry::new());
    // A busy schedule whose only *real* defect is the silent drop: the
    // serving side skips one sample the oracle still counts.
    let mut schedule = ChaosSchedule::generate(41, &opts);
    schedule.lives[0]
        .faults
        .push(ChaosFault::SilentDrop { at_sample: 9 });
    let dir = temp_dir("sabotage");
    let violation = run_schedule(&schedule, &opts, &registry, &dir)
        .expect_err("silent drop must violate the oracle");
    let rendered = violation.to_string();
    assert!(
        rendered.contains("chaos seed 41"),
        "violation must carry the seed: {rendered}"
    );

    let mut attempt = 0u64;
    let minimal = shrink(&schedule, |candidate| {
        attempt += 1;
        let dir = temp_dir(&format!("sabotage-shrink-{attempt}"));
        let outcome = run_schedule(candidate, &opts, &registry, &dir);
        let _ = std::fs::remove_dir_all(&dir);
        outcome.is_err()
    });
    assert_eq!(
        minimal.fault_count(),
        1,
        "minimal schedule kept extra faults:\n{}",
        minimal.describe()
    );
    let faults: Vec<&ChaosFault> = minimal.lives.iter().flat_map(|l| &l.faults).collect();
    assert_eq!(faults, vec![&ChaosFault::SilentDrop { at_sample: 9 }]);
    assert!(minimal.lives.iter().all(|l| l.kill.is_none()));
    assert_eq!(minimal.seed, 41);
    let _ = std::fs::remove_dir_all(&dir);
}

fn chaos_config(opts: &ChaosOptions, seed: u64) -> AscsConfig {
    opts.config(seed)
}

#[test]
fn recovery_reentry_budget_is_a_typed_bound() {
    let opts = ChaosOptions::default();
    let cfg = chaos_config(&opts, 7);
    let hyper = opts.hyper();
    let dir = temp_dir("reentry");

    // Build a real durable directory first.
    let durability = DurabilityOptions {
        checkpoint_every: 16,
        wal_segment_records: 16,
        ..DurabilityOptions::new(&dir)
    };
    let mut serving = ServingEstimator::launch_durable(
        cfg,
        Some(hyper),
        ServeOptions {
            shards: 2,
            ..ServeOptions::default()
        },
        durability,
    )
    .unwrap();
    for t in 1..=48u64 {
        serving
            .ingest_blocking(&ascs_testkit::chaos::chaos_sample(7, t, cfg.dim))
            .unwrap();
    }
    serving.shutdown();

    // Every attempt crashes at op 0 → the budget must be spent and the
    // failure surfaced as the typed terminal error, not a crash loop.
    let err = match recover_with_reentry(&dir, &cfg, Some(&hyper), 2, 2, |_| {
        Arc::new(FaultFs::new().crash_at_op(0)) as Arc<dyn ascs::core::codec::DurableFs>
    }) {
        Ok(_) => panic!("always-crashing recovery must exhaust the budget"),
        Err(err) => err,
    };
    match &err {
        DurabilityError::RecoveryBudgetExhausted { attempts, .. } => assert_eq!(*attempts, 2),
        other => panic!("wanted RecoveryBudgetExhausted, got {other}"),
    }
    assert!(err.to_string().contains("budget spent"), "{err}");

    // Crash on the first attempt only → the re-entry absorbs it.
    let outcome = recover_with_reentry(&dir, &cfg, Some(&hyper), 2, 3, |attempt| {
        if attempt == 0 {
            Arc::new(FaultFs::new().crash_at_op(2)) as Arc<dyn ascs::core::codec::DurableFs>
        } else {
            Arc::new(ascs::core::codec::StdFs) as Arc<dyn ascs::core::codec::DurableFs>
        }
    })
    .unwrap();
    assert_eq!(outcome.state.epoch(), 48);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rearmable_panic_trigger_drives_a_crash_loop_into_the_restart_budget() {
    let opts = ChaosOptions::default();
    let cfg = chaos_config(&opts, 11);
    let hyper = opts.hyper();
    // A trigger that panics shard 0 on every third update, firing during
    // recovery replay too: with the exemption lifted, replaying the batch
    // that caused the panic panics again, so the worker crash-loops until
    // the supervisor's restart budget abandons the shard.
    let plan = Arc::new(
        FaultPlan::new()
            .panic_trigger(0, Trigger::every(3))
            .with_recovery_injection(),
    );
    let mut serving = ServingEstimator::launch_with_faults(
        cfg,
        Some(hyper),
        ServeOptions {
            shards: 2,
            // Tiny queue: once the shard stops draining, backpressure makes
            // the producer observe the failure instead of racing past it.
            queue_capacity: 2,
            max_restarts: 2,
            ingest_timeout: Duration::from_secs(10),
            ..ServeOptions::default()
        },
        plan.clone(),
    );
    let mut failed = false;
    for t in 1..=4096u64 {
        match serving.ingest_blocking(&ascs_testkit::chaos::chaos_sample(11, t, cfg.dim)) {
            Ok(_) => {}
            Err(IngestError::ShardFailed { shard }) => {
                assert_eq!(shard, 0);
                failed = true;
                break;
            }
            Err(other) => panic!("unexpected ingest error: {other}"),
        }
    }
    assert!(failed, "crash loop never exhausted the restart budget");
    let health = serving.health();
    assert_eq!(health.failed_shards, vec![0]);
    assert!(
        plan.panics_fired() >= 3,
        "trigger fired only {} times",
        plan.panics_fired()
    );
    assert!(health.coherence_violations().is_empty());
    serving.shutdown();
}
