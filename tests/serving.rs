//! Tier-1 serving-core tests: snapshot consistency against a sequential
//! replay oracle, concurrent readers over live ingestion, backpressure,
//! non-finite quarantine, and crash recovery (worker panics and torn
//! checkpoints) with bit-identical post-recovery state.
//!
//! The oracle is [`ascs_testkit::ReplayOracle`]: the same stream through a
//! plain sequential `ShardedAscs` with the same seed, shard count and
//! router. Every assertion of "consistent" below means *bit-identical* to
//! that oracle — tables, gate counters and top lists.
//!
//! Note: the injected-panic tests intentionally print panic backtraces to
//! stderr (the workers really do panic); the supervisor catching and
//! recovering from them is exactly what is under test.

use ascs::core::serve::{IngestError, ServeOptions, ServingEstimator, Snapshot};
use ascs::prelude::*;
use ascs_testkit::{FaultPlan, ReplayOracle};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const DIM: u64 = 16;
const PAIRS: u64 = DIM * (DIM - 1) / 2; // 120

fn config(total: u64, seed: u64) -> AscsConfig {
    AscsConfig {
        dim: DIM,
        total_samples: total,
        geometry: SketchGeometry::new(5, 512),
        alpha: 0.05,
        signal_strength: 0.5,
        sigma: 1.0,
        delta: 0.05,
        delta_star: 0.20,
        tau0: 1e-4,
        estimand: EstimandKind::Covariance,
        update_mode: UpdateMode::Product,
        seed,
        top_k_capacity: 16,
    }
}

fn hyper(total: u64) -> HyperParameters {
    HyperParameters {
        t0: (total / 4).max(1),
        theta: 0.2,
        tau0: 1e-4,
        delta: 0.05,
        delta_star: 0.20,
    }
}

/// Deterministic dense samples with every coordinate non-zero, so every
/// sample emits all `PAIRS` pair updates — which makes shard-local update
/// indices (for scripted panics) exactly computable.
fn sample_at(t: u64) -> Sample {
    let values: Vec<f64> = (0..DIM)
        .map(|f| ((t * 31 + f * 7) % 4) as f64 * 0.6 - 0.9)
        .collect();
    Sample::dense(values)
}

/// Updates shard 0 receives per sample (every sample covers all keys).
fn shard0_keys_per_sample(oracle: &ReplayOracle) -> u64 {
    let k0 = (0..PAIRS).filter(|&key| oracle.shard_of(key) == 0).count() as u64;
    assert!(k0 > 0, "test geometry routes nothing to shard 0");
    k0
}

/// The full consistency contract: a snapshot at epoch `e` equals the
/// sequential oracle after `e` samples, bit for bit.
fn assert_snapshot_matches(snapshot: &Snapshot, oracle: &ReplayOracle, what: &str) {
    assert_eq!(snapshot.epoch(), oracle.samples(), "{what}: epoch mismatch");
    let served: Vec<u64> = snapshot
        .sketch()
        .table()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let truth: Vec<u64> = oracle
        .merged_sketch()
        .table()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(served, truth, "{what}: merged tables diverged");
    assert_eq!(
        snapshot.update_counts(),
        oracle.update_counts(),
        "{what}: gate counters diverged"
    );
    let top: Vec<(u64, f64)> = snapshot
        .top_pairs(usize::MAX)
        .into_iter()
        .map(|p| (p.key, p.estimate))
        .collect();
    assert_eq!(top, oracle.top_pairs(), "{what}: top pairs diverged");
}

#[test]
fn snapshots_are_bit_identical_to_sequential_replay_at_every_epoch() {
    let total = 192u64;
    let cfg = config(total, 41);
    let hp = hyper(total);
    let mut serving =
        ServingEstimator::launch_with_hyperparameters(cfg, Some(hp), ServeOptions::default());
    let mut oracle = ReplayOracle::new(&cfg, Some(&hp), serving.shards());
    for t in 1..=total {
        let s = sample_at(t);
        let emitted = serving.try_ingest(&s).expect("ingest failed");
        assert_eq!(emitted, oracle.ingest(&s), "emitted update count diverged");
        if t % 32 == 0 {
            let snap = serving.refresh_snapshot().expect("refresh failed");
            assert_snapshot_matches(&snap, &oracle, &format!("epoch {t}"));
        }
    }
    let stats = serving.shutdown();
    assert_eq!(stats.ingested_samples, total);
    assert_eq!(stats.emitted_updates, oracle.emitted_updates());
    assert_eq!(stats.worker_panics, 0);
    assert_eq!(stats.published_epoch, total);
}

#[test]
fn concurrent_readers_never_observe_a_torn_or_regressing_snapshot() {
    let total = 256u64;
    let cfg = config(total, 43);
    let hp = hyper(total);
    let mut serving =
        ServingEstimator::launch_with_hyperparameters(cfg, Some(hp), ServeOptions::default());
    let mut oracle = ReplayOracle::new(&cfg, Some(&hp), serving.shards());
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let reader = serving.snapshot_reader();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut last_epoch = 0u64;
                let mut reads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let view = reader.current();
                    assert!(
                        view.snapshot.epoch() >= last_epoch,
                        "snapshot epoch regressed"
                    );
                    last_epoch = view.snapshot.epoch();
                    // A torn table would show up as NaN/garbage medians;
                    // every published estimate must be finite.
                    for key in [0u64, 7, 64, PAIRS - 1] {
                        assert!(view.snapshot.estimate(key).is_finite());
                    }
                    assert!(!view.degraded, "no faults were injected");
                    reads += 1;
                }
                reads
            })
        })
        .collect();
    for t in 1..=total {
        let s = sample_at(t);
        serving.ingest_blocking(&s).expect("ingest failed");
        oracle.ingest(&s);
        if t % 32 == 0 {
            serving.refresh_snapshot().expect("refresh failed");
        }
    }
    let final_snap = serving.refresh_snapshot().expect("final refresh");
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        assert!(r.join().expect("reader panicked") > 0, "reader never ran");
    }
    assert_snapshot_matches(&final_snap, &oracle, "final state under readers");
    serving.shutdown();
}

#[test]
fn worker_panic_recovers_to_state_bit_identical_to_an_uninterrupted_run() {
    let total = 192u64;
    let cfg = config(total, 47);
    let hp = hyper(total);
    let mut oracle = ReplayOracle::new(&cfg, Some(&hp), 2);
    let k0 = shard0_keys_per_sample(&oracle);
    // Panic on the first update of sample 101's shard-0 batch: several
    // checkpoints (interval 32) plus a partial replay log are in play.
    let plan = Arc::new(FaultPlan::new().panic_at(0, k0 * 100));
    let mut serving =
        ServingEstimator::launch_with_faults(cfg, Some(hp), ServeOptions::default(), plan.clone());
    for t in 1..=total {
        let s = sample_at(t);
        serving.ingest_blocking(&s).expect("ingest failed");
        oracle.ingest(&s);
    }
    let snap = serving.refresh_snapshot().expect("post-recovery refresh");
    assert_snapshot_matches(&snap, &oracle, "post-recovery state");
    assert_eq!(plan.panics_fired(), 1, "scripted panic never fired");
    let stats = serving.shutdown();
    assert_eq!(stats.worker_panics, 1);
    assert_eq!(stats.worker_restarts, 1);
    assert_eq!(stats.failed_shards, 0);
    assert_eq!(stats.recovering_workers, 0);
}

#[test]
fn torn_checkpoint_is_rejected_and_recovery_still_matches_the_oracle() {
    let total = 96u64;
    let cfg = config(total, 53);
    let hp = hyper(total);
    let mut oracle = ReplayOracle::new(&cfg, Some(&hp), 2);
    let k0 = shard0_keys_per_sample(&oracle);
    // Shard 0's first checkpoint write (after 8 batches) is truncated to
    // 10 bytes — it must be rejected at validation, leaving the bootstrap
    // checkpoint in place — and the panic at sample 21 then forces a
    // recovery that replays through the longer-than-planned log.
    let plan = Arc::new(
        FaultPlan::new()
            .truncate_checkpoint_at(0, 10)
            .panic_at(0, k0 * 20),
    );
    let opts = ServeOptions {
        checkpoint_interval: 8,
        ..ServeOptions::default()
    };
    let mut serving = ServingEstimator::launch_with_faults(cfg, Some(hp), opts, plan.clone());
    for t in 1..=total {
        let s = sample_at(t);
        serving.ingest_blocking(&s).expect("ingest failed");
        oracle.ingest(&s);
    }
    let snap = serving.refresh_snapshot().expect("post-recovery refresh");
    assert_snapshot_matches(&snap, &oracle, "post-torn-checkpoint state");
    assert_eq!(plan.truncations_fired(), 1);
    assert_eq!(plan.panics_fired(), 1);
    let stats = serving.shutdown();
    assert_eq!(stats.torn_checkpoints, 1);
    assert_eq!(stats.worker_panics, 1);
    assert_eq!(stats.worker_restarts, 1);
}

#[test]
fn full_queues_surface_typed_overload_instead_of_blocking() {
    let total = 64u64;
    let cfg = config(total, 59);
    let hp = hyper(total);
    let plan = Arc::new(FaultPlan::new());
    plan.set_hold_batches(true);
    let opts = ServeOptions {
        queue_capacity: 2,
        ..ServeOptions::default()
    };
    let mut serving = ServingEstimator::launch_with_faults(cfg, Some(hp), opts, plan.clone());
    let mut oracle = ReplayOracle::new(&cfg, Some(&hp), serving.shards());

    // With workers held, each shard absorbs at most `capacity` queued
    // batches plus one in flight; the storm must then surface as a typed
    // Overloaded error rather than blocking or dropping on the floor.
    let mut accepted = 0u64;
    let overload = loop {
        match serving.try_ingest(&sample_at(accepted + 1)) {
            Ok(_) => {
                accepted += 1;
                assert!(
                    accepted <= 3,
                    "queue_capacity 2 absorbed {accepted} samples"
                );
            }
            Err(e) => break e,
        }
    };
    match overload {
        IngestError::Overloaded { shard, capacity } => {
            assert!(shard < serving.shards());
            assert_eq!(capacity, 2);
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    // The rejected sample mutated nothing: stream time still equals the
    // accepted count, and retrying the SAME sample after release works.
    assert_eq!(serving.processed_samples(), accepted);
    assert!(serving.stats().overload_rejections >= 1);

    plan.set_hold_batches(false);
    for t in 1..=accepted {
        oracle.ingest(&sample_at(t));
    }
    for t in accepted + 1..=total {
        let s = sample_at(t);
        serving.ingest_blocking(&s).expect("ingest failed");
        oracle.ingest(&s);
    }
    let snap = serving.refresh_snapshot().expect("refresh failed");
    assert_snapshot_matches(&snap, &oracle, "state after overload storm");
    serving.shutdown();
}

#[test]
fn degraded_mode_serves_the_stale_snapshot_while_recovery_is_held() {
    let total = 96u64;
    let cfg = config(total, 61);
    let hp = hyper(total);
    let mut oracle = ReplayOracle::new(&cfg, Some(&hp), 2);
    let k0 = shard0_keys_per_sample(&oracle);
    // The panic fires during sample 67 — AFTER the epoch-48 refresh below,
    // so the published snapshot is the one degraded mode must keep serving.
    let plan = Arc::new(FaultPlan::new().panic_at(0, k0 * 66));
    let mut serving =
        ServingEstimator::launch_with_faults(cfg, Some(hp), ServeOptions::default(), plan.clone());
    let reader = serving.snapshot_reader();
    for t in 1..=48 {
        let s = sample_at(t);
        serving.ingest_blocking(&s).expect("ingest failed");
        oracle.ingest(&s);
    }
    serving.refresh_snapshot().expect("refresh failed");
    plan.set_hold_recovery(true);
    for t in 49..=total {
        let s = sample_at(t);
        serving.ingest_blocking(&s).expect("ingest failed");
        oracle.ingest(&s);
    }
    // Wait for the supervisor to restart the worker; the replacement then
    // parks in before_recovery, freezing the service mid-recovery.
    let deadline = Instant::now() + Duration::from_secs(30);
    while serving.stats().recovering_workers == 0 {
        assert!(Instant::now() < deadline, "recovery never started");
        std::thread::yield_now();
    }
    let view = reader.current();
    assert!(view.degraded, "mid-recovery reads must be flagged degraded");
    assert_eq!(
        view.snapshot.epoch(),
        48,
        "degraded mode must serve the last published snapshot"
    );
    assert!(view.lag > 0, "staleness must be visible");
    // Pre-crash history is still fully queryable from the stale snapshot.
    assert!(view.snapshot.estimate(0).is_finite());

    plan.set_hold_recovery(false);
    let snap = serving.refresh_snapshot().expect("post-recovery refresh");
    assert_snapshot_matches(&snap, &oracle, "post-degraded state");
    let view = reader.current();
    assert!(!view.degraded, "recovery completed; flag must clear");
    assert_eq!(view.lag, 0);
    let stats = serving.shutdown();
    assert_eq!(stats.worker_restarts, 1);
}

#[test]
fn non_finite_samples_are_quarantined_at_the_serving_boundary() {
    let total = 64u64;
    let cfg = config(total, 67);
    let hp = hyper(total);
    let mut serving =
        ServingEstimator::launch_with_hyperparameters(cfg, Some(hp), ServeOptions::default());
    let mut oracle = ReplayOracle::new(&cfg, Some(&hp), serving.shards());
    for t in 1..=20 {
        let s = sample_at(t);
        serving.ingest_blocking(&s).expect("ingest failed");
        oracle.ingest(&s);
    }
    let mut poisoned = vec![0.5f64; DIM as usize];
    poisoned[5] = f64::NAN;
    let err = serving
        .try_ingest(&Sample::dense(poisoned))
        .expect_err("NaN sample must be rejected");
    match err {
        IngestError::NonFinite { index, value } => {
            assert_eq!(index, 5);
            assert!(value.is_nan());
        }
        other => panic!("expected NonFinite, got {other:?}"),
    }
    // Sparse infinities are screened too (the sparse constructor keeps
    // non-zero entries, NaN and ±inf included).
    assert!(matches!(
        serving.try_ingest(&Sample::sparse(DIM, vec![(2, f64::NEG_INFINITY)])),
        Err(IngestError::NonFinite { index: 2, .. })
    ));
    assert_eq!(serving.stats().quarantined_samples, 2);
    assert_eq!(
        serving.processed_samples(),
        20,
        "quarantine must not advance the stream"
    );
    let snap = serving.refresh_snapshot().expect("refresh failed");
    assert_snapshot_matches(&snap, &oracle, "state after quarantine");
    serving.shutdown();
}

#[test]
fn vanilla_serving_and_shutdown_stats_are_coherent() {
    let total = 64u64;
    let cfg = config(total, 71);
    let mut serving = ServingEstimator::launch_vanilla(cfg, ServeOptions::default());
    let mut oracle = ReplayOracle::new(&cfg, None, serving.shards());
    for t in 1..=total {
        let s = sample_at(t);
        serving.ingest_blocking(&s).expect("ingest failed");
        oracle.ingest(&s);
    }
    let snap = serving.refresh_snapshot().expect("refresh failed");
    assert_snapshot_matches(&snap, &oracle, "vanilla serving");
    let (_, skipped) = snap.update_counts();
    assert_eq!(skipped, 0, "vanilla workers never skip");
    let stats = serving.shutdown();
    assert_eq!(stats.ingested_samples, total);
    assert_eq!(stats.emitted_updates, total * PAIRS);
    assert_eq!(stats.quarantined_samples, 0);
    assert_eq!(stats.overload_rejections, 0);
    assert_eq!(stats.worker_panics, 0);
    assert_eq!(stats.worker_restarts, 0);
    assert_eq!(stats.torn_checkpoints, 0);
    assert_eq!(stats.failed_shards, 0);
    assert_eq!(stats.published_epoch, total);
}

/// Satellite regression: `ingest_blocking` no longer spins on yield — a
/// queue held full past the deadline surfaces a typed
/// [`IngestError::Timeout`] with the waited duration, counted in the
/// health report, and the same sample succeeds after release.
#[test]
fn exhausted_ingest_deadline_is_a_typed_timeout_not_a_livelock() {
    let total = 64u64;
    let cfg = config(total, 73);
    let hp = hyper(total);
    let plan = Arc::new(FaultPlan::new());
    plan.set_hold_batches(true);
    let opts = ServeOptions {
        queue_capacity: 1,
        ..ServeOptions::default()
    };
    let mut serving = ServingEstimator::launch_with_faults(cfg, Some(hp), opts, plan.clone());
    let mut oracle = ReplayOracle::new(&cfg, Some(&hp), serving.shards());

    // Storm until overload is *steady*: each held worker parks with one
    // batch in flight, so room can free up once per shard after the first
    // rejection. Only when no sample has been accepted for a settle
    // window is the timeout below guaranteed to fire.
    let mut accepted = 0u64;
    let mut last_accept = Instant::now();
    loop {
        match serving.try_ingest(&sample_at(accepted + 1)) {
            Ok(_) => {
                accepted += 1;
                last_accept = Instant::now();
                assert!(accepted <= 4, "held queues absorbed {accepted} samples");
            }
            Err(IngestError::Overloaded { .. }) => {
                if last_accept.elapsed() > Duration::from_millis(300) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(other) => panic!("expected Overloaded during the storm, got {other:?}"),
        }
    }
    let deadline = Duration::from_millis(50);
    let started = Instant::now();
    let err = serving
        .ingest_with_deadline(&sample_at(accepted + 1), deadline)
        .expect_err("held queues must time the ingest out");
    let elapsed = started.elapsed();
    match err {
        IngestError::Timeout { waited } => {
            assert!(waited >= deadline, "gave up early after {waited:?}");
            assert!(
                elapsed < Duration::from_secs(10),
                "backoff overslept: {elapsed:?}"
            );
        }
        other => panic!("expected Timeout, got {other:?}"),
    }

    let health = serving.health();
    assert_eq!(health.ingest_timeouts, 1);
    assert!(health.overload_rejections > 0);
    assert!(!health.durability.enabled, "in-memory launch");
    assert_eq!(health.shard_restarts, vec![0; serving.shards()]);
    assert_eq!(serving.stats().ingest_timeouts, 1);
    let rendered = health.to_string();
    assert!(rendered.contains("serving health"), "{rendered}");
    assert!(rendered.contains("disabled"), "{rendered}");

    // The timed-out sample was never half-applied: releasing the hold and
    // retrying the SAME sample keeps the stream oracle-identical.
    plan.set_hold_batches(false);
    for t in 1..=accepted {
        oracle.ingest(&sample_at(t));
    }
    for t in accepted + 1..=total {
        let s = sample_at(t);
        serving.ingest_blocking(&s).expect("ingest after release");
        oracle.ingest(&s);
    }
    let snap = serving.refresh_snapshot().expect("refresh failed");
    assert_snapshot_matches(&snap, &oracle, "state after timeout storm");
    serving.shutdown();
}

#[test]
fn backoff_jitter_sequence_is_pinned_per_seed() {
    use ascs_sketch_hash::splitmix64;

    // `ingest_with_deadline` seeds its jitter stream as
    // `splitmix64(config.seed ^ JITTER_SALT)`; the salt below mirrors
    // serve.rs. This pins the exact nanosecond sequence for seed 7 so an
    // accidental change to the backoff constants, the mixer, or the
    // seeding breaks loudly instead of silently re-randomizing retry
    // schedules that replay-debugging depends on.
    const JITTER_SALT: u64 = 0x6A09_E667_F3BC_C909;
    let mut rng = splitmix64(7 ^ JITTER_SALT);
    let pinned: [u64; 10] = [
        12_753, 20_096, 68_566, 88_650, 213_522, 556_758, 1_185_441, 2_352_966, 2_244_560,
        1_745_770,
    ];
    for (step, &expected) in pinned.iter().enumerate() {
        let delay = jittered_backoff(step as u32, &mut rng);
        assert_eq!(
            delay,
            Duration::from_nanos(expected),
            "jitter sequence drifted at step {step}"
        );
    }

    // Replaying from the same state reproduces the same schedule, and a
    // different seed decorrelates: blocked ingesters with different
    // configured seeds must not retry in lockstep.
    let mut a = splitmix64(7 ^ JITTER_SALT);
    let mut b = splitmix64(7 ^ JITTER_SALT);
    let mut c = splitmix64(8 ^ JITTER_SALT);
    let mut diverged = false;
    for step in 0..32u32 {
        let da = jittered_backoff(step, &mut a);
        assert_eq!(da, jittered_backoff(step, &mut b));
        diverged |= da != jittered_backoff(step, &mut c);
        // Envelope: half-to-full of the nominal doubling-with-cap curve.
        let nominal = Duration::from_micros((20u64 << step.min(7)).min(2_500));
        assert!(da >= nominal / 2 && da < nominal, "step {step}: {da:?}");
    }
    assert!(diverged, "seeds 7 and 8 produced identical jitter");
}

/// Time-aware serving reads: the snapshot-differencing window view must be
/// **bit-identical** to a directly maintained windowed backend fed the
/// same stream — count-sketch linearity is exact under dyadic sample
/// values and a power-of-two `T`, so any bit of divergence is a real bug
/// in the ring (wrong base boundary, wrong normaliser, a read that
/// mutated state). The decayed view is block-granular, so it is pinned
/// against its own contract instead: at `γ → 1` it must collapse to the
/// cumulative mean.
#[test]
fn windowed_snapshot_view_is_bit_identical_to_a_maintained_windowed_sketch() {
    use ascs::core::serve::WindowedSnapshotRing;

    let total = 256u64; // power of two: 1/T scaling is exact on dyadics
    let (seg_len, segs) = (32u64, 3usize);
    let cfg = config(total, 59);
    let mut hp = hyper(total);
    hp.t0 = total; // explore the whole stream: the gate inserts everything
    let mut serving =
        ServingEstimator::launch_with_hyperparameters(cfg, Some(hp), ServeOptions::default());
    let mut ring = WindowedSnapshotRing::new(seg_len, segs, total);
    let mut windowed = CovarianceEstimator::with_hyperparameters(
        cfg,
        SketchBackend::Windowed {
            segment_len: seg_len,
            segments: segs,
        },
        None,
    );

    // Dyadic sample values {-1, -0.5, 0, 0.5, 1}: every pair update and
    // every partial sum is exactly representable.
    let dyadic_sample = |t: u64| -> Sample {
        let values: Vec<f64> = (0..DIM)
            .map(|f| ((t * 31 + f * 7) % 5) as f64 * 0.5 - 1.0)
            .collect();
        Sample::dense(values)
    };

    let mut checked_warm_window = false;
    for t in 1..=total {
        let s = dyadic_sample(t);
        serving.try_ingest(&s).expect("ingest failed");
        windowed.process_sample(&s);
        // Refresh on every block boundary (the epochs the ring retains as
        // window bases) plus an off-boundary cadence, which must only
        // advance the head.
        if t % seg_len == 0 || t % 17 == 0 {
            let before = ring.retained_boundaries();
            let advanced = ring.observe(serving.refresh_snapshot().expect("refresh failed"));
            assert!(advanced, "a fresh snapshot was rejected at t = {t}");
            if t % seg_len != 0 {
                assert_eq!(ring.retained_boundaries(), before, "non-boundary retained");
            }
        }
        if t % seg_len == 0 {
            let view = ring.windowed_view().expect("no view after observing");
            assert_eq!(view.epoch(), t);
            let (start, n) = ascs::core::timeaware::window_span(t, seg_len, segs);
            assert_eq!(view.base_epoch(), start - 1, "wrong window base at t = {t}");
            assert_eq!(view.span(), n, "wrong window span at t = {t}");
            checked_warm_window |= view.base_epoch() > 0;
            for key in 0..PAIRS {
                assert_eq!(
                    view.estimate(key).to_bits(),
                    windowed.estimate_key(key).to_bits(),
                    "windowed serving read diverged at t = {t}, key = {key}"
                );
                assert_eq!(
                    view.estimate_pair(1, 3).to_bits(),
                    windowed.estimate_pair(1, 3).to_bits()
                );
            }
        }
    }
    assert!(checked_warm_window, "window never warmed past the prefix");
    // A stale snapshot must be ignored.
    let snap = serving.refresh_snapshot().expect("refresh failed");
    assert!(ring.observe(snap.clone()) || snap.epoch() == ring.epoch());
    assert!(!ring.observe(snap), "stale snapshot accepted");
    assert!(ring.retained_boundaries() <= segs + 1);

    // Decayed view contract: at γ → 1 every block weight → 1, so the
    // block-granular EWMA collapses to the cumulative mean.
    let near_one = ring.decayed_view(0.999_999_9).expect("no decayed view");
    let cumulative = serving.snapshot_reader().current().snapshot.clone();
    for key in 0..PAIRS {
        let ewma = near_one.estimate(key);
        let mean = cumulative.estimate(key) * total as f64 / ring.epoch() as f64;
        assert!(
            (ewma - mean).abs() <= 1e-4 * (1.0 + mean.abs()),
            "γ→1 decayed view should match the cumulative mean at key {key}: {ewma} vs {mean}"
        );
        assert!(ring.decayed_view(0.5).unwrap().estimate(key).is_finite());
    }
    serving.shutdown();
}
