//! Durability-layer tests: disk checkpoints, the sample WAL, and the
//! [`RecoveryManager`] cold-start path — proven bit-identical to a
//! sequential oracle under crashes both simulated (`simulate_crash`,
//! scripted filesystem death) and real (a SIGKILLed child process).
//!
//! The fault surface is [`ascs_testkit::FaultFs`]: torn writes, short
//! writes, failed fsyncs, ENOSPC and whole-filesystem crash points, all
//! scripted and deterministic. The ground truth is
//! [`ascs_testkit::ReplayOracle`], exactly as in `tests/serving.rs`:
//! "recovered" always means *bit-identical* to a sequential run over the
//! recovered prefix — tables, gate counters and top lists.

use ascs::core::codec::{save_to_path_with, StdFs};
use ascs::core::serve::{ServeOptions, ServingEstimator, Snapshot};
use ascs::prelude::*;
use ascs_testkit::{FaultFs, ReplayOracle};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const DIM: u64 = 16;

fn config(total: u64, seed: u64) -> AscsConfig {
    AscsConfig {
        dim: DIM,
        total_samples: total,
        geometry: SketchGeometry::new(5, 512),
        alpha: 0.05,
        signal_strength: 0.5,
        sigma: 1.0,
        delta: 0.05,
        delta_star: 0.20,
        tau0: 1e-4,
        estimand: EstimandKind::Covariance,
        update_mode: UpdateMode::Product,
        seed,
        top_k_capacity: 16,
    }
}

fn hyper(total: u64) -> HyperParameters {
    HyperParameters {
        t0: (total / 4).max(1),
        theta: 0.2,
        tau0: 1e-4,
        delta: 0.05,
        delta_star: 0.20,
    }
}

/// Deterministic dense samples, identical to the `tests/serving.rs`
/// generator so WAL replays and oracles agree across tests and processes.
fn sample_at(t: u64) -> Sample {
    let values: Vec<f64> = (0..DIM)
        .map(|f| ((t * 31 + f * 7) % 4) as f64 * 0.6 - 0.9)
        .collect();
    Sample::dense(values)
}

/// A fresh per-test data directory (removed up front so reruns are clean).
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ascs-durability-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durability(dir: &std::path::Path, checkpoint_every: u64) -> DurabilityOptions {
    DurabilityOptions {
        checkpoint_every,
        wal_segment_records: 16,
        ..DurabilityOptions::new(dir)
    }
}

/// The sequential oracle advanced to `epoch` samples of the shared stream.
fn oracle_at(
    cfg: &AscsConfig,
    hp: Option<&HyperParameters>,
    shards: usize,
    epoch: u64,
) -> ReplayOracle {
    let mut oracle = ReplayOracle::new(cfg, hp, shards);
    for t in 1..=epoch {
        oracle.ingest(&sample_at(t));
    }
    oracle
}

/// Full bit-identity: snapshot tables, gate counters and top pairs equal
/// the sequential oracle's.
fn assert_snapshot_matches(snapshot: &Snapshot, oracle: &ReplayOracle, what: &str) {
    assert_eq!(snapshot.epoch(), oracle.samples(), "{what}: epoch mismatch");
    let served: Vec<u64> = snapshot
        .sketch()
        .table()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let truth: Vec<u64> = oracle
        .merged_sketch()
        .table()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(served, truth, "{what}: merged tables diverged");
    assert_eq!(
        snapshot.update_counts(),
        oracle.update_counts(),
        "{what}: gate counters diverged"
    );
    let top: Vec<(u64, f64)> = snapshot
        .top_pairs(usize::MAX)
        .into_iter()
        .map(|p| (p.key, p.estimate))
        .collect();
    assert_eq!(top, oracle.top_pairs(), "{what}: top pairs diverged");
}

/// Bit-identity for a raw [`RecoveredState`] (no serving relaunch needed).
fn assert_recovered_matches(state: &RecoveredState, oracle: &ReplayOracle, what: &str) {
    assert_eq!(state.epoch(), oracle.samples(), "{what}: epoch mismatch");
    assert_eq!(
        state.emitted_updates(),
        oracle.emitted_updates(),
        "{what}: emitted counters diverged"
    );
    let recovered: Vec<u64> = state
        .merged_sketch()
        .table()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let truth: Vec<u64> = oracle
        .merged_sketch()
        .table()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(recovered, truth, "{what}: merged tables diverged");
}

#[test]
fn restart_after_simulated_crash_resumes_bit_identically() {
    let dir = temp_dir("restart");
    let total = 192u64;
    let cfg = config(total, 101);
    let hp = hyper(total);

    // First life: durable ingestion up to sample 100, then a crash that
    // skips every shutdown nicety (no final fsync, no checkpoint).
    let mut serving = ServingEstimator::launch_durable(
        cfg,
        Some(hp),
        ServeOptions::default(),
        durability(&dir, 32),
    )
    .expect("durable launch failed");
    let report = serving.recovery_report().expect("durable launch reports");
    assert_eq!(report.recovered_epoch, 0, "fresh directory must start cold");
    for t in 1..=100 {
        serving
            .ingest_blocking(&sample_at(t))
            .expect("ingest failed");
    }
    let health = serving.health();
    assert!(health.durability.enabled);
    assert!(!health.durability.durability_lost);
    assert_eq!(
        health.durability.last_durable_epoch, 100,
        "fsync-always must acknowledge durably"
    );
    assert!(health.durability.checkpoint_generations >= 1);
    serving.simulate_crash();

    // Second life: recovery must land exactly at epoch 100 (checkpoint 96
    // plus a 4-record WAL tail) and the stream must continue as if the
    // crash never happened.
    let mut serving = ServingEstimator::launch_durable(
        cfg,
        Some(hp),
        ServeOptions::default(),
        durability(&dir, 32),
    )
    .expect("durable relaunch failed");
    let report = serving.recovery_report().expect("relaunch reports").clone();
    assert_eq!(report.recovered_epoch, 100, "durable prefix lost: {report}");
    assert_eq!(report.checkpoint_epoch, 96);
    assert!(report.wal_records_replayed >= 4, "{report}");
    assert_eq!(report.torn_generations_discarded, 0, "{report}");
    assert!(!report.wal_tail_discarded, "{report}");
    assert!(report.duration > Duration::ZERO);
    assert_eq!(serving.processed_samples(), 100);

    let snap = serving.refresh_snapshot().expect("post-recovery refresh");
    assert_snapshot_matches(
        &snap,
        &oracle_at(&cfg, Some(&hp), 2, 100),
        "recovered state",
    );

    let mut oracle = oracle_at(&cfg, Some(&hp), 2, 100);
    for t in 101..=total {
        let s = sample_at(t);
        serving.ingest_blocking(&s).expect("ingest failed");
        oracle.ingest(&s);
    }
    let snap = serving.refresh_snapshot().expect("final refresh");
    assert_snapshot_matches(&snap, &oracle, "resumed stream");
    let stats = serving.shutdown();
    assert_eq!(stats.published_epoch, total);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_latest_generation_falls_back_to_the_previous_one() {
    let dir = temp_dir("torn-gen");
    let total = 64u64;
    let cfg = config(total, 103);
    let hp = hyper(total);
    let mut serving = ServingEstimator::launch_durable(
        cfg,
        Some(hp),
        ServeOptions::default(),
        durability(&dir, 16),
    )
    .expect("durable launch failed");
    for t in 1..=total {
        serving
            .ingest_blocking(&sample_at(t))
            .expect("ingest failed");
    }
    serving.simulate_crash();

    // Corrupt one byte of the newest generation's manifest. Recovery must
    // fall back to the previous generation and still replay the retained
    // WAL back to the full epoch — keep_generations = 2 exists exactly so
    // the WAL covering the previous generation is never collected early.
    let newest = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.to_string_lossy().ends_with(".manifest"))
        .max()
        .expect("no manifest written");
    let mut bytes = std::fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x41;
    std::fs::write(&newest, &bytes).unwrap();

    let serving = ServingEstimator::launch_durable(
        cfg,
        Some(hp),
        ServeOptions::default(),
        durability(&dir, 16),
    )
    .expect("relaunch failed");
    let report = serving.recovery_report().expect("relaunch reports");
    assert_eq!(report.torn_generations_discarded, 1, "{report}");
    assert_eq!(
        report.recovered_epoch, total,
        "fallback generation + WAL tail must still reach the full epoch: {report}"
    );
    assert!(report.checkpoint_epoch < total);
    drop(serving); // clean shutdown
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn enospc_degrades_durability_but_serving_stays_consistent() {
    let dir = temp_dir("enospc");
    let total = 96u64;
    let cfg = config(total, 107);
    let hp = hyper(total);
    // Manual checkpoints only, so the byte budget is consumed by the WAL:
    // roughly 25 records fit before the disk "fills".
    let opts = DurabilityOptions {
        max_retries: 2,
        retry_backoff: Duration::from_micros(100),
        ..durability(&dir, 0)
    };
    let fs = Arc::new(FaultFs::new().enospc_after(4096));
    let mut serving = ServingEstimator::launch_durable_with_faults(
        cfg,
        Some(hp),
        ServeOptions::default(),
        opts,
        Arc::new(NoFaults),
        fs.clone(),
    )
    .expect("durable launch failed");
    let mut oracle = ReplayOracle::new(&cfg, Some(&hp), serving.shards());
    for t in 1..=total {
        let s = sample_at(t);
        serving
            .ingest_blocking(&s)
            .expect("a full disk must degrade durability, never fail in-memory ingestion");
        oracle.ingest(&s);
    }
    let health = serving.health();
    assert!(health.degraded, "durability loss must flag the service");
    assert!(health.durability.durability_lost);
    assert!(
        health.durability.last_durable_epoch < total,
        "some tail must have been lost to the full disk"
    );
    assert!(health.durability.last_durable_epoch > 0);
    assert!(health.durability.persistence_retries > 0);

    // A manual checkpoint against the full disk fails typed, not fatally.
    let err = serving
        .persist_checkpoint()
        .expect_err("checkpoint on a full disk must fail");
    assert!(matches!(
        err,
        DurabilityError::Io { .. } | DurabilityError::Codec { .. }
    ));
    assert!(serving.health().durability.checkpoint_failures > 0);

    // In-memory serving never diverged.
    let snap = serving.refresh_snapshot().expect("refresh failed");
    assert_snapshot_matches(&snap, &oracle, "degraded serving");

    // The durable prefix on disk is still a clean recoverable stream.
    let durable_epoch = serving.health().durability.last_durable_epoch;
    serving.simulate_crash();
    let outcome = RecoveryManager::new(&dir)
        .recover(&cfg, Some(&hp), 2)
        .expect("recovery after ENOSPC failed");
    assert!(outcome.state.epoch() >= durable_epoch);
    assert_recovered_matches(
        &outcome.state,
        &oracle_at(&cfg, Some(&hp), 2, outcome.state.epoch()),
        "post-ENOSPC durable prefix",
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn failed_fsync_retries_into_a_fresh_segment_without_losing_durability() {
    let dir = temp_dir("fsync");
    let total = 48u64;
    let cfg = config(total, 109);
    let hp = hyper(total);
    // The 10th WAL fsync fails once; the store must abandon the segment,
    // retry the record into a fresh one, and stay fully durable.
    let fs = Arc::new(FaultFs::new().fail_sync(9));
    let mut serving = ServingEstimator::launch_durable_with_faults(
        cfg,
        Some(hp),
        ServeOptions::default(),
        durability(&dir, 0),
        Arc::new(NoFaults),
        fs.clone(),
    )
    .expect("durable launch failed");
    for t in 1..=total {
        serving
            .ingest_blocking(&sample_at(t))
            .expect("ingest failed");
    }
    let health = serving.health();
    assert!(!health.durability.durability_lost);
    assert_eq!(health.durability.last_durable_epoch, total);
    assert!(health.durability.persistence_retries >= 1);
    serving.simulate_crash();

    // The retried record was re-appended to a later segment, so replay
    // must tolerate the duplicate and reach the full epoch.
    let outcome = RecoveryManager::new(&dir)
        .recover(&cfg, Some(&hp), 2)
        .expect("recovery failed");
    assert_eq!(outcome.state.epoch(), total, "{}", outcome.report);
    assert!(
        outcome.report.wal_records_skipped >= 1,
        "the retried append must appear as a skipped duplicate: {}",
        outcome.report
    );
    assert_recovered_matches(
        &outcome.state,
        &oracle_at(&cfg, Some(&hp), 2, total),
        "post-fsync-failure state",
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn save_to_path_commit_protocol_orders_write_sync_rename_dirsync() {
    // Satellite regression for the durability hole fixed in this PR: the
    // atomic save must fsync the temp file BEFORE the rename and the
    // parent directory AFTER it — and a short write must be absorbed by
    // the writer loop, not truncate the record.
    let dir = temp_dir("protocol");
    std::fs::create_dir_all(&dir).unwrap();
    let fs = Arc::new(FaultFs::new().short_write_at(0, 3));
    let target = dir.join("ckpt-demo");
    let payload = vec![0xA5u8; 256];
    save_to_path_with(&*fs, &target, |w| {
        use std::io::Write as _;
        w.write_all(&payload).map_err(Into::into)
    })
    .expect("atomic save failed");
    assert_eq!(std::fs::read(&target).unwrap(), payload);

    let log = fs.log();
    let position = |needle: &str| {
        log.iter()
            .position(|line| line.contains(needle))
            .unwrap_or_else(|| panic!("no `{needle}` in {log:#?}"))
    };
    let create = position("create ckpt-demo.tmp");
    let sync_tmp = position("sync ckpt-demo.tmp");
    let rename = position("rename ckpt-demo.tmp -> ckpt-demo");
    let sync_dir = position("sync_dir");
    assert!(create < sync_tmp, "{log:#?}");
    assert!(
        sync_tmp < rename,
        "file fsync must precede the rename: {log:#?}"
    );
    assert!(
        rename < sync_dir,
        "directory fsync must follow the rename: {log:#?}"
    );
    assert_eq!(fs.write_count(), 2, "short write must be retried: {log:#?}");

    // A torn write aborts the save, removes the temp file, and leaves no
    // destination behind.
    let fs = Arc::new(FaultFs::new().torn_write_at(0, 4));
    let target = dir.join("ckpt-torn");
    let err = save_to_path_with(&*fs, &target, |w| {
        use std::io::Write as _;
        w.write_all(&payload).map_err(Into::into)
    })
    .expect_err("torn write must abort the save");
    assert!(matches!(err, CodecError::Io(_)));
    assert!(!target.exists(), "no destination may appear");
    assert!(
        !dir.join("ckpt-torn.tmp").exists(),
        "the temp file must be cleaned up"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The kill-at-every-crash-point matrix: run the workload once over a
/// transparent [`FaultFs`] to learn the filesystem-operation count `N`,
/// then re-run it `N` times with the filesystem dying at operation
/// `0, 1, …, N-1`. Every crash point must leave a directory that recovers
/// — without panics — to a state bit-identical to the sequential oracle
/// at the recovered epoch, at or past the epoch the store had durably
/// acknowledged when the crash hit.
#[test]
fn every_filesystem_crash_point_recovers_a_consistent_durable_prefix() {
    let total = 32u64;
    let cfg = config(total, 113);
    let hp = hyper(total);
    let opts = ServeOptions::default();
    let dopts = |dir: &std::path::Path| DurabilityOptions {
        checkpoint_every: 12,
        wal_segment_records: 8,
        max_retries: 1,
        retry_backoff: Duration::from_micros(50),
        ..DurabilityOptions::new(dir)
    };

    let run = |fs: Arc<FaultFs>, dir: &std::path::Path| -> u64 {
        let mut serving = ServingEstimator::launch_durable_with_faults(
            cfg,
            Some(hp),
            opts,
            dopts(dir),
            Arc::new(NoFaults),
            fs,
        )
        .expect("launch must survive filesystem faults");
        for t in 1..=total {
            serving
                .ingest_blocking(&sample_at(t))
                .expect("ingest failed");
        }
        let durable_epoch = serving.health().durability.last_durable_epoch;
        serving.simulate_crash();
        durable_epoch
    };

    // Dry run: learn the op-index space.
    let probe_dir = temp_dir("matrix-probe");
    let probe = Arc::new(FaultFs::new());
    let clean_epoch = run(probe.clone(), &probe_dir);
    assert_eq!(clean_epoch, total);
    let ops = probe.op_count();
    assert!(ops > 50, "workload exercised only {ops} fs operations");
    std::fs::remove_dir_all(&probe_dir).unwrap();

    // Precompute oracle prefixes once (epoch → merged table bits).
    let mut oracle = ReplayOracle::new(&cfg, Some(&hp), 2);
    let mut truth: Vec<(Vec<u64>, u64)> = Vec::with_capacity(total as usize + 1);
    truth.push((
        oracle
            .merged_sketch()
            .table()
            .iter()
            .map(|v| v.to_bits())
            .collect(),
        0,
    ));
    for t in 1..=total {
        oracle.ingest(&sample_at(t));
        truth.push((
            oracle
                .merged_sketch()
                .table()
                .iter()
                .map(|v| v.to_bits())
                .collect(),
            oracle.emitted_updates(),
        ));
    }

    let dir = temp_dir("matrix");
    for op in 0..ops {
        let _ = std::fs::remove_dir_all(&dir);
        let fs = Arc::new(FaultFs::new().crash_at_op(op));
        let durable_epoch = run(fs.clone(), &dir);
        assert!(fs.crashed(), "crash point {op} never fired");

        let outcome = RecoveryManager::new(&dir)
            .recover(&cfg, Some(&hp), 2)
            .unwrap_or_else(|e| panic!("crash point {op}: recovery failed: {e}"));
        let epoch = outcome.state.epoch();
        assert!(
            epoch >= durable_epoch,
            "crash point {op}: durably acknowledged epoch {durable_epoch} \
             not recovered (got {epoch}): {}",
            outcome.report
        );
        let (expected_table, expected_emitted) = &truth[epoch as usize];
        let recovered: Vec<u64> = outcome
            .state
            .merged_sketch()
            .table()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(
            &recovered, expected_table,
            "crash point {op}: recovered state diverged at epoch {epoch}"
        );
        assert_eq!(
            outcome.state.emitted_updates(),
            *expected_emitted,
            "crash point {op}: emitted counter diverged at epoch {epoch}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Real process death: spawn a child, SIGKILL it mid-ingest, recover.
// ---------------------------------------------------------------------------

/// Child half of the SIGKILL pair. A no-op unless `ASCS_SIGKILL_CHILD_DIR`
/// is set, in which case it ingests the shared deterministic stream into a
/// durable estimator until killed.
#[test]
fn sigkill_child_ingest_loop() {
    let Some(dir) = std::env::var_os("ASCS_SIGKILL_CHILD_DIR") else {
        return;
    };
    let total = 1_000_000u64;
    let cfg = config(total, 127);
    let hp = hyper(total);
    let mut serving = ServingEstimator::launch_durable(
        cfg,
        Some(hp),
        ServeOptions::default(),
        DurabilityOptions {
            checkpoint_every: 64,
            wal_segment_records: 128,
            ..DurabilityOptions::new(&dir)
        },
    )
    .expect("child durable launch failed");
    for t in 1..=total {
        serving
            .ingest_blocking(&sample_at(t))
            .expect("child ingest failed");
    }
    unreachable!("the parent must SIGKILL this process long before 1M samples");
}

/// Parent half: spawns this very test binary running only the child test,
/// waits for durable progress on disk, SIGKILLs the child, and recovers —
/// asserting the state is bit-identical to the sequential oracle at the
/// recovered epoch and reporting the recovery time.
#[test]
fn sigkilled_process_recovers_bit_identically_from_disk() {
    let dir = temp_dir("sigkill");
    let total = 1_000_000u64;
    let cfg = config(total, 127); // must mirror the child exactly
    let hp = hyper(total);

    let exe = std::env::current_exe().expect("test binary path");
    let mut child = std::process::Command::new(exe)
        .args(["sigkill_child_ingest_loop", "--exact", "--nocapture"])
        .env("ASCS_SIGKILL_CHILD_DIR", &dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawning the child failed");

    // Wait until the child has durably checkpointed at least once and is
    // deep into a WAL segment, so the kill lands mid-stream.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        assert!(
            Instant::now() < deadline,
            "child produced no durable progress in time"
        );
        if let Some(status) = child.try_wait().expect("try_wait failed") {
            panic!("child exited prematurely: {status}");
        }
        let manifests = std::fs::read_dir(&dir)
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .filter(|e| e.path().to_string_lossy().ends_with(".manifest"))
                    .count()
            })
            .unwrap_or(0);
        if manifests >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    // SIGKILL: no destructors, no flushes — real process death.
    child.kill().expect("kill failed");
    child.wait().expect("wait failed");

    let started = Instant::now();
    let outcome = RecoveryManager::new(&dir)
        .recover(&cfg, Some(&hp), ServeOptions::default().shards)
        .expect("recovery after SIGKILL failed");
    let recovery_time = started.elapsed();
    let epoch = outcome.state.epoch();
    assert!(epoch >= 64, "no checkpointed progress recovered: {epoch}");
    assert_recovered_matches(
        &outcome.state,
        &oracle_at(&cfg, Some(&hp), ServeOptions::default().shards, epoch),
        "post-SIGKILL state",
    );
    println!(
        "SIGKILL recovery: epoch {epoch} in {:.2} ms ({})",
        recovery_time.as_secs_f64() * 1e3,
        outcome.report
    );

    // And the recovered directory relaunches into live serving.
    let mut serving = ServingEstimator::launch_durable(
        cfg,
        Some(hp),
        ServeOptions::default(),
        DurabilityOptions::new(&dir),
    )
    .expect("relaunch after SIGKILL failed");
    let mut oracle = oracle_at(&cfg, Some(&hp), serving.shards(), epoch);
    for t in epoch + 1..=epoch + 32 {
        let s = sample_at(t);
        serving.ingest_blocking(&s).expect("ingest failed");
        oracle.ingest(&s);
    }
    let snap = serving.refresh_snapshot().expect("refresh failed");
    assert_snapshot_matches(&snap, &oracle, "post-SIGKILL resumed stream");
    serving.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovery_on_a_pristine_directory_is_a_clean_cold_start() {
    let dir = temp_dir("cold");
    let cfg = config(64, 131);
    let hp = hyper(64);
    let outcome = RecoveryManager::with_fs(&dir, Arc::new(StdFs))
        .recover(&cfg, Some(&hp), 2)
        .expect("cold-start recovery failed");
    assert_eq!(outcome.state.epoch(), 0);
    assert_eq!(outcome.state.emitted_updates(), 0);
    assert_eq!(outcome.state.shard_sketches().len(), 2);
    let report = &outcome.report;
    assert_eq!(report.checkpoint_generation, None);
    assert_eq!(report.wal_segments_scanned, 0);
    assert_eq!(report.recovered_epoch, 0);
    assert_recovered_matches(
        &outcome.state,
        &ReplayOracle::new(&cfg, Some(&hp), 2),
        "cold start",
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Double crash: first a real SIGKILL mid-ingest, then a fault-injected
/// process death landing *while the recovery replays the WAL*, absorbed
/// by the bounded re-entry budget. A third, clean cold start must see
/// exactly the same directory: the crashed recovery attempt may not have
/// changed what any later recovery rebuilds, and the final state must be
/// bit-identical to the sequential oracle at the recovered epoch.
#[test]
fn double_crash_with_kill_during_wal_replay_recovers_bit_identically() {
    use ascs::core::codec::DurableFs;

    let dir = temp_dir("double-crash");
    let total = 1_000_000u64;
    let cfg = config(total, 127); // must mirror the SIGKILL child exactly
    let hp = hyper(total);
    let shards = ServeOptions::default().shards;

    let exe = std::env::current_exe().expect("test binary path");
    let mut child = std::process::Command::new(exe)
        .args(["sigkill_child_ingest_loop", "--exact", "--nocapture"])
        .env("ASCS_SIGKILL_CHILD_DIR", &dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawning the child failed");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        assert!(
            Instant::now() < deadline,
            "child produced no durable progress in time"
        );
        if let Some(status) = child.try_wait().expect("try_wait failed") {
            panic!("child exited prematurely: {status}");
        }
        let manifests = std::fs::read_dir(&dir)
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .filter(|e| e.path().to_string_lossy().ends_with(".manifest"))
                    .count()
            })
            .unwrap_or(0);
        if manifests >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().expect("kill failed");
    child.wait().expect("wait failed");

    // Probe twice with a counting filesystem: the first pass may sweep
    // stray files, the second gives the steady-state op count a repeat
    // recovery performs — so the injected crash below lands two ops short
    // of the finish line, squarely inside the WAL tail replay.
    let mut clean_epoch = 0;
    let mut ops = 0;
    for _ in 0..2 {
        let probe = Arc::new(FaultFs::new());
        let outcome = RecoveryManager::with_fs(&dir, probe.clone())
            .recover(&cfg, Some(&hp), shards)
            .expect("probe recovery failed");
        assert!(
            outcome.report.wal_records_replayed + outcome.report.wal_records_skipped > 0,
            "recovery must walk WAL records for the crash to land mid-replay: {}",
            outcome.report
        );
        clean_epoch = outcome.state.epoch();
        ops = probe.op_count();
    }
    assert!(clean_epoch >= 64, "no checkpointed progress: {clean_epoch}");

    let crash_fs = Arc::new(FaultFs::new().crash_at_op(ops - 2));
    let outcome = recover_with_reentry(&dir, &cfg, Some(&hp), shards, 3, |attempt| {
        if attempt == 0 {
            crash_fs.clone() as Arc<dyn DurableFs>
        } else {
            Arc::new(StdFs) as Arc<dyn DurableFs>
        }
    })
    .expect("re-entry recovery failed");
    // The crashing op itself is counted, so a fired crash leaves the
    // count exactly one past its trigger — and short of a full recovery.
    assert_eq!(
        crash_fs.op_count(),
        ops - 1,
        "the first recovery attempt must have died mid-replay"
    );
    assert_eq!(outcome.state.epoch(), clean_epoch);
    assert_recovered_matches(
        &outcome.state,
        &oracle_at(&cfg, Some(&hp), shards, clean_epoch),
        "recovery re-entered after crash-during-replay",
    );

    // Third crash survived implicitly: a clean cold start over the same
    // directory reaches the same epoch, bit for bit.
    let outcome = RecoveryManager::new(&dir)
        .recover(&cfg, Some(&hp), shards)
        .expect("clean third recovery failed");
    assert_eq!(outcome.state.epoch(), clean_epoch);
    assert_recovered_matches(
        &outcome.state,
        &oracle_at(&cfg, Some(&hp), shards, clean_epoch),
        "third cold start",
    );

    // And the directory still relaunches into live serving.
    let mut serving = ServingEstimator::launch_durable(
        cfg,
        Some(hp),
        ServeOptions::default(),
        DurabilityOptions::new(&dir),
    )
    .expect("relaunch after double crash failed");
    let mut oracle = oracle_at(&cfg, Some(&hp), serving.shards(), clean_epoch);
    for t in clean_epoch + 1..=clean_epoch + 32 {
        let s = sample_at(t);
        serving.ingest_blocking(&s).expect("ingest failed");
        oracle.ingest(&s);
    }
    let snap = serving.refresh_snapshot().expect("refresh failed");
    assert_snapshot_matches(&snap, &oracle, "stream resumed after double crash");
    serving.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Regression for a durable-floor hole the chaos harness found (seed
/// 1249): when corruption opens a record *gap* in the WAL, every future
/// recovery stops at the gap — yet a reopened store appended *behind* it,
/// so the records backing its advertised `last_durable_epoch` were
/// unreachable on the next cold start. Recovery now repairs the log:
/// the gapped segment is rewritten down to its consumed prefix, dead
/// segments beyond it are deleted, and appends re-join a contiguous log.
#[test]
fn wal_gap_is_repaired_so_later_appends_stay_recoverable() {
    let dir = temp_dir("wal-gap-repair");
    let cfg = config(96, 137);
    let hp = hyper(96);
    let mut serving = ServingEstimator::launch_durable(
        cfg,
        Some(hp),
        ServeOptions::default(),
        DurabilityOptions {
            checkpoint_every: 0, // WAL only: the gap must not be papered over
            wal_segment_records: 8,
            ..DurabilityOptions::new(&dir)
        },
    )
    .expect("durable launch failed");
    for t in 1..=24u64 {
        serving.ingest_blocking(&sample_at(t)).expect("ingest");
    }
    serving.simulate_crash();

    // Corrupt one record in the middle of the *first* segment: recovery
    // must stop there, and everything behind the corruption is dead.
    let mut segments: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.to_string_lossy().contains("wal"))
        .collect();
    segments.sort();
    assert!(segments.len() >= 3, "wanted several segments: {segments:?}");
    let mut bytes = std::fs::read(&segments[0]).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&segments[0], &bytes).unwrap();

    let outcome = RecoveryManager::new(&dir)
        .recover(&cfg, Some(&hp), 2)
        .expect("recovery over the corrupt WAL failed");
    let repaired_epoch = outcome.state.epoch();
    assert!(outcome.report.wal_repaired, "{}", outcome.report);
    assert!(repaired_epoch < 24, "corruption should cost records");
    assert_recovered_matches(
        &outcome.state,
        &oracle_at(&cfg, Some(&hp), 2, repaired_epoch),
        "post-corruption recovery",
    );

    // Reopen, append new records, crash again: the floor the store
    // advertises must actually be recoverable — this is exactly what
    // broke before the repair existed.
    let mut serving = ServingEstimator::launch_durable(
        cfg,
        Some(hp),
        ServeOptions::default(),
        DurabilityOptions {
            checkpoint_every: 0,
            wal_segment_records: 8,
            ..DurabilityOptions::new(&dir)
        },
    )
    .expect("relaunch over repaired WAL failed");
    for t in repaired_epoch + 1..=repaired_epoch + 12 {
        serving.ingest_blocking(&sample_at(t)).expect("ingest");
    }
    let floor = serving.health().durability.last_durable_epoch;
    assert!(floor >= repaired_epoch + 12, "appends were not durable");
    serving.simulate_crash();

    let outcome = RecoveryManager::new(&dir)
        .recover(&cfg, Some(&hp), 2)
        .expect("recovery after repaired appends failed");
    assert!(
        outcome.state.epoch() >= floor,
        "advertised durable floor {floor} unreachable: cold start got {}",
        outcome.state.epoch()
    );
    assert_recovered_matches(
        &outcome.state,
        &oracle_at(&cfg, Some(&hp), 2, outcome.state.epoch()),
        "cold start over repaired log",
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
