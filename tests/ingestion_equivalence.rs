//! Equivalence guarantees of the fused single-hash ingestion path and the
//! sharded parallel ingestion layer.
//!
//! * A property test drives [`AscsSketch::offer`] against an **independent
//!   naive oracle** (estimate → gate → update → estimate, written here from
//!   the documented algorithm using only the raw [`CountSketch`] API) and
//!   demands bit-identical decisions, tables, estimates and tracker state
//!   across random geometries, keys, weights and phase splits.
//! * [`ShardedAscs`] is checked against sequential ingestion two ways:
//!   vanilla mode with heavy collisions (dyadic weights, power-of-two `T`,
//!   so the re-associated merge is exact) and gated mode on a
//!   collision-free key set (where shard-local gates provably decide like
//!   the sequential gate).
//! * The **plan-driven** ingestion path ([`AscsSketch::offer_planned`] /
//!   [`HashPlan`]) is property-tested bit-identical to the PR 2 fused path
//!   across random geometries, keys, weights and phase splits — gated and
//!   vanilla — and [`CountSketch::estimate_many`] bit-identical to per-key
//!   [`CountSketch::estimate`] sweeps.
//! * Sharded **planned-batch** ingestion is property-tested with the top-k
//!   tracker *enabled*: worker tables, gate counters, per-worker tracker
//!   contents and the cross-shard merged `top_pairs()` report must all
//!   match the hashed batch path exactly, over both the sequential and the
//!   parallel routing paths.

use ascs::prelude::*;
use ascs_core::AscsPhase;
use proptest::prelude::*;
use std::collections::HashSet;

fn hyper(t0: u64, theta: f64, tau0: f64) -> HyperParameters {
    HyperParameters {
        t0,
        theta,
        tau0,
        delta: 0.05,
        delta_star: 0.2,
    }
}

/// A from-scratch reimplementation of Algorithm 2's offer over the raw
/// count sketch — deliberately *not* sharing the fused code paths, so a bug
/// there cannot cancel out in the comparison. The tracker is fed a full
/// fresh point query on every insert, the naive way.
struct NaiveOracle {
    sketch: CountSketch,
    tracker: TopKTracker,
    schedule: ThresholdSchedule,
    t0: u64,
    total: u64,
    inserted: u64,
    skipped: u64,
}

impl NaiveOracle {
    fn new(
        geometry: SketchGeometry,
        hp: &HyperParameters,
        total: u64,
        cap: usize,
        seed: u64,
    ) -> Self {
        Self {
            sketch: CountSketch::new(geometry.rows, geometry.range, seed),
            tracker: TopKTracker::new(cap),
            schedule: ThresholdSchedule::linear(hp.tau0, hp.theta, hp.t0, total),
            t0: hp.t0,
            total,
            inserted: 0,
            skipped: 0,
        }
    }

    /// Returns whether the update was inserted.
    fn offer(&mut self, key: u64, x: f64, t: u64) -> bool {
        let w = x * (1.0 / self.total as f64);
        let exploration = t <= self.t0;
        let accept = if exploration {
            true
        } else {
            let estimate = self.sketch.estimate(key);
            let posterior = estimate + w;
            let tau = self.schedule.tau(t - 1);
            estimate.abs() >= tau || posterior.abs() >= tau
        };
        if accept {
            self.sketch.update(key, w);
            self.inserted += 1;
            let fresh = self.sketch.estimate(key);
            self.tracker.offer(key, fresh.abs());
        } else {
            self.skipped += 1;
        }
        accept
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The fused offer path is bit-identical to the naive
    /// estimate→update→estimate reference across random geometries, keys,
    /// weights and phase splits.
    #[test]
    fn fused_offer_is_bit_identical_to_naive_reference(
        rows in 1usize..8,
        range in 8usize..512,
        total in 32u64..400,
        t0_frac in 0.05f64..1.0,
        theta in 0.0f64..0.5,
        tau0 in 0.0f64..0.01,
        seed in 0u64..1000,
        updates in proptest::collection::vec((0u64..64, -2.0f64..2.0), 1..250),
    ) {
        let t0 = ((total as f64 * t0_frac) as u64).clamp(1, total);
        let hp = hyper(t0, theta, tau0);
        let geometry = SketchGeometry::new(rows, range);
        let mut fused = AscsSketch::new(geometry, &hp, total, 16, seed);
        let mut naive = NaiveOracle::new(geometry, &hp, total, 16, seed);
        for (i, &(key, x)) in updates.iter().enumerate() {
            let t = (i as u64 % total) + 1;
            let outcome = fused.offer(key, x, t);
            let expect_phase = if t <= t0 { AscsPhase::Exploration } else { AscsPhase::Sampling };
            prop_assert_eq!(outcome.phase, expect_phase);
            let naive_inserted = naive.offer(key, x, t);
            prop_assert_eq!(
                outcome.inserted, naive_inserted,
                "gate diverged at step {} (t = {}, key = {})", i, t, key
            );
        }
        // Bit-identical tables...
        let ta = fused.sketch().table();
        let tb = naive.sketch.table();
        prop_assert!(
            ta.iter().zip(tb).all(|(a, b)| a.to_bits() == b.to_bits()),
            "sketch tables diverged"
        );
        // ...identical counters...
        prop_assert_eq!(fused.inserted_updates(), naive.inserted);
        prop_assert_eq!(fused.skipped_updates(), naive.skipped);
        // ...identical estimates (value equality: ±0.0 compare equal)...
        for key in 0..64u64 {
            prop_assert_eq!(fused.estimate(key), naive.sketch.estimate(key));
        }
        // ...and identical tracker contents.
        prop_assert_eq!(fused.top_pairs(), naive.tracker.descending());
    }

    /// Plan-driven ingestion is bit-identical to the PR 2 fused path across
    /// random geometries, keys, weights and phase splits. `t0_frac` up to
    /// 1.0 covers the vanilla (never-gated) regime as well as gated runs,
    /// and the tracked/untracked split covers both tracker policies.
    #[test]
    fn planned_ingestion_is_bit_identical_to_fused(
        rows in 1usize..8,
        range in 8usize..512,
        total in 32u64..400,
        t0_frac in 0.05f64..1.0,
        theta in 0.0f64..0.5,
        tau0 in 0.0f64..0.01,
        seed in 0u64..1000,
        track in proptest::bool::ANY,
        updates in proptest::collection::vec((0u64..64, -2.0f64..2.0), 1..250),
    ) {
        let t0 = ((total as f64 * t0_frac) as u64).clamp(1, total);
        let hp = hyper(t0, theta, tau0);
        let geometry = SketchGeometry::new(rows, range);
        let build = || {
            let s = AscsSketch::new(geometry, &hp, total, 16, seed);
            if track { s } else { s.without_tracking() }
        };
        let mut fused = build();
        let mut planned = build();
        let plan = planned.sketch().build_plan(64);
        for (i, &(key, x)) in updates.iter().enumerate() {
            let t = (i as u64 % total) + 1;
            let gate = fused.sample_gate(t);
            let a = fused.offer_gated(key, x, gate);
            let b = planned.offer_planned(&plan, key, x, gate);
            prop_assert_eq!(a, b, "outcome diverged at step {} (t = {}, key = {})", i, t, key);
        }
        let ta = fused.sketch().table();
        let tb = planned.sketch().table();
        prop_assert!(
            ta.iter().zip(tb).all(|(a, b)| a.to_bits() == b.to_bits()),
            "sketch tables diverged"
        );
        prop_assert_eq!(fused.inserted_updates(), planned.inserted_updates());
        prop_assert_eq!(fused.skipped_updates(), planned.skipped_updates());
        prop_assert_eq!(fused.top_pairs(), planned.top_pairs());
    }

    /// The batch driver (gate memoised per distinct `t`, look-ahead
    /// prefetch) changes nothing observable against per-update offers.
    #[test]
    fn ingest_planned_batch_is_bit_identical_to_offers(
        range in 8usize..256,
        seed in 0u64..500,
        updates in proptest::collection::vec((0u64..32, -2.0f64..2.0), 1..200),
    ) {
        let total = 64u64;
        let hp = hyper(8, 0.3, 1e-3);
        let geometry = SketchGeometry::new(5, range);
        let mut direct = AscsSketch::new(geometry, &hp, total, 16, seed);
        let mut batched = AscsSketch::new(geometry, &hp, total, 16, seed);
        let plan = batched.sketch().build_plan(32);
        let batch: Vec<ShardUpdate> = updates
            .iter()
            .enumerate()
            .map(|(i, &(key, x))| ShardUpdate { key, value: x, t: (i as u64 % total) + 1 })
            .collect();
        for u in &batch {
            direct.offer(u.key, u.value, u.t);
        }
        batched.ingest_planned(&plan, &batch);
        let ta = direct.sketch().table();
        let tb = batched.sketch().table();
        prop_assert!(ta.iter().zip(tb).all(|(a, b)| a.to_bits() == b.to_bits()));
        prop_assert_eq!(direct.inserted_updates(), batched.inserted_updates());
        prop_assert_eq!(direct.skipped_updates(), batched.skipped_updates());
        prop_assert_eq!(direct.top_pairs(), batched.top_pairs());
    }

    /// The cache-blocked whole-universe sweep answers exactly what per-key
    /// point queries answer, bit for bit, across random geometries and
    /// universe sizes (including sizes straddling the sweep's block
    /// boundary and keys never inserted).
    #[test]
    fn estimate_many_is_bit_identical_to_point_estimates(
        rows in 1usize..8,
        range in 8usize..512,
        universe in 1usize..3000,
        seed in 0u64..1000,
        updates in proptest::collection::vec((0u64..1024, -2.0f64..2.0), 0..300),
    ) {
        let mut cs = CountSketch::new(rows, range, seed);
        for &(key, w) in &updates {
            cs.update(key % universe as u64, w);
        }
        let plan = cs.build_plan(universe);
        let mut swept = Vec::new();
        cs.estimate_many(&plan, &mut swept);
        prop_assert_eq!(swept.len(), universe);
        for (slot, &est) in swept.iter().enumerate() {
            prop_assert_eq!(
                est.to_bits(),
                cs.estimate(slot as u64).to_bits(),
                "sweep diverged at slot {}", slot
            );
        }
    }

    /// Sharded planned-batch ingestion with the **top-k tracker enabled**
    /// is indistinguishable from the hashed batch path: same worker
    /// tables, same gate counters, same per-worker tracker state, and the
    /// same cross-shard merged `top_pairs()` report — on both the
    /// sequential small-batch path and the parallel scoped-thread path.
    /// (The untracked planned paths were already covered above; the
    /// tracker is the piece that used to be property-tested only for
    /// sequential sketches.)
    #[test]
    fn sharded_planned_batch_with_tracker_matches_hashed(
        shards in 1usize..5,
        range in 16usize..256,
        t0_frac in 0.05f64..1.0,
        theta in 0.0f64..0.4,
        seed in 0u64..500,
        parallel in proptest::bool::ANY,
        updates in proptest::collection::vec((0u64..48, -2.0f64..2.0), 32..300),
    ) {
        let total = 128u64;
        let t0 = ((total as f64 * t0_frac) as u64).clamp(1, total);
        let hp = hyper(t0, theta, 1e-3);
        let geometry = SketchGeometry::new(5, range);
        let threshold = if parallel { 1 } else { usize::MAX };
        let build = || {
            ShardedAscs::new(geometry, &hp, total, 16, seed, shards)
                .with_parallel_threshold(threshold)
        };
        let batch: Vec<ShardUpdate> = updates
            .iter()
            .enumerate()
            .map(|(i, &(key, x))| ShardUpdate { key, value: x, t: (i as u64 % total) + 1 })
            .collect();
        let mut hashed = build();
        hashed.offer_batch(&batch);
        let mut planned = build();
        let plan = planned.workers()[0].sketch().build_plan(48);
        planned.offer_batch_planned(&plan, &batch);

        for (shard, (a, b)) in hashed.workers().iter().zip(planned.workers()).enumerate() {
            let ta = a.sketch().table();
            let tb = b.sketch().table();
            prop_assert!(
                ta.iter().zip(tb).all(|(x, y)| x.to_bits() == y.to_bits()),
                "worker {} table diverged between hashed and planned routing", shard
            );
            prop_assert_eq!(
                a.top_pairs(), b.top_pairs(),
                "worker {} tracker diverged", shard
            );
        }
        prop_assert_eq!(hashed.inserted_updates(), planned.inserted_updates());
        prop_assert_eq!(hashed.skipped_updates(), planned.skipped_updates());
        prop_assert_eq!(hashed.top_pairs(), planned.top_pairs());
    }

    /// **Checkpoint merge, vanilla backend.** Two processes sketch disjoint
    /// time halves of the stream, serialize, and merge via linearity; with
    /// dyadic weights every intermediate sum is exact, so the merged sketch
    /// must equal sequential ingestion bit for bit — tables, estimates and
    /// counters alike.
    #[test]
    fn checkpoint_merge_of_time_split_vanilla_equals_sequential(
        range in 16usize..128,
        seed in 0u64..500,
        split_frac in 0.0f64..1.0,
        updates in proptest::collection::vec((0u64..512, -8i32..8), 64..400),
    ) {
        let total = 256u64;
        let geometry = SketchGeometry::new(5, range);
        let mut seq = AscsSketch::vanilla(geometry, total, 32, seed);
        let mut first = AscsSketch::vanilla(geometry, total, 32, seed);
        let mut second = AscsSketch::vanilla(geometry, total, 32, seed);
        let mid = ((updates.len() as f64) * split_frac) as usize;
        for (i, &(key, q)) in updates.iter().enumerate() {
            let t = (i as u64 % total) + 1;
            let x = f64::from(q) * 0.25;
            seq.offer(key, x, t);
            if i < mid {
                first.offer(key, x, t);
            } else {
                second.offer(key, x, t);
            }
        }
        let mut bytes_a = Vec::new();
        let mut bytes_b = Vec::new();
        first.save(&mut bytes_a).unwrap();
        second.save(&mut bytes_b).unwrap();
        let mut merged = AscsSketch::restore(&mut bytes_a.as_slice()).unwrap();
        merged.merge_from_checkpoint(&mut bytes_b.as_slice()).unwrap();

        let ta = seq.sketch().table();
        let tb = merged.sketch().table();
        prop_assert!(
            ta.iter().zip(tb).all(|(a, b)| a.to_bits() == b.to_bits()),
            "merged table diverged from sequential ingestion"
        );
        for key in 0..512u64 {
            prop_assert_eq!(seq.estimate(key).to_bits(), merged.estimate(key).to_bits());
        }
        prop_assert_eq!(seq.inserted_updates(), merged.inserted_updates());
        prop_assert_eq!(seq.skipped_updates(), merged.skipped_updates());
    }

    /// **Windowed ring ↔ from-scratch rebuild.** A [`WindowedSketch`]
    /// maintained incrementally (head-segment ingest, tail retire at every
    /// block boundary) must be bit-identical — merged table, raw point
    /// queries and normalised estimates — to a plain [`CountSketch`]
    /// rebuilt from scratch over only the in-window samples, across random
    /// geometries, window sizes, segment counts and stop points (so the
    /// comparison lands before, at, and after retire boundaries). Dyadic
    /// weights keep every grouping of the sums exact. Retired segments are
    /// round-tripped through the PR 5 codec and re-merged to reconstruct
    /// the cumulative sketch, pinning the spill path in the same run.
    #[test]
    fn windowed_ring_is_bit_identical_to_in_window_rebuild(
        rows in 1usize..6,
        range in 8usize..256,
        segment_len in 1u64..24,
        segments in 1usize..7,
        per_sample in 1usize..4,
        total in 1u64..120,
        seed in 0u64..1000,
        raw in proptest::collection::vec((0u64..48, -8i32..8), 360..361),
    ) {
        // Dyadic update weights: all sums exact under any association.
        let updates: Vec<(u64, f64)> = raw
            .iter()
            .map(|&(key, q)| (key, f64::from(q) * 0.25))
            .collect();
        let mut win = ascs_core::WindowedSketch::new(rows, range, seed, segment_len, segments);
        let mut cumulative = CountSketch::new(rows, range, seed);
        let mut spilled: Vec<u8> = Vec::new();
        let mut retired_count = 0u64;
        for t in 1..=total {
            if let Some(retired) = win.begin_sample() {
                // Spill through the codec, as the lifecycle layer would.
                retired.save(&mut spilled).unwrap();
                retired_count += 1;
            }
            let base = (t as usize - 1) * per_sample;
            for &(key, w) in &updates[base..base + per_sample] {
                win.ingest(key, w);
                cumulative.update(key, w);
            }
        }

        // Rebuild from scratch over only the in-window samples.
        let (start, n) = win.window_span();
        prop_assert_eq!((start, n), ascs_core::window_span(total, segment_len, segments));
        let mut rebuild = CountSketch::new(rows, range, seed);
        for s in start..=total {
            let base = (s as usize - 1) * per_sample;
            for &(key, w) in &updates[base..base + per_sample] {
                rebuild.update(key, w);
            }
        }
        let merged = win.merged_sketch();
        prop_assert!(
            merged.table().iter().zip(rebuild.table()).all(|(a, b)| a.to_bits() == b.to_bits()),
            "merged ring table diverged from the in-window rebuild"
        );
        for key in 0..48u64 {
            prop_assert_eq!(
                win.raw_estimate(key).to_bits(),
                rebuild.estimate(key).to_bits(),
                "raw point query diverged at key {}", key
            );
            let expect = if n == 0 { 0.0 } else { rebuild.estimate(key) / n as f64 };
            prop_assert_eq!(
                win.estimate(key).to_bits(),
                expect.to_bits(),
                "normalised estimate diverged at key {}", key
            );
        }

        // Restore every spilled segment and re-merge with the live ring:
        // linearity reconstructs the cumulative sketch bit for bit.
        prop_assert_eq!(win.retired_segments(), retired_count);
        let mut reconstructed = merged;
        let mut cursor = spilled.as_slice();
        for _ in 0..retired_count {
            let seg = ascs_core::RetiredSegment::restore(&mut cursor).unwrap();
            reconstructed.merge(seg.sketch());
        }
        prop_assert!(cursor.is_empty(), "trailing bytes after the last spilled segment");
        prop_assert!(
            reconstructed.table().iter().zip(cumulative.table()).all(|(a, b)| a.to_bits() == b.to_bits()),
            "restored spill + live ring diverged from the cumulative sketch"
        );
    }

    /// Sharded vanilla ingestion merges to exactly the sequential sketch
    /// even under heavy collisions: with dyadic weights and a power-of-two
    /// `T`, every intermediate sum is exact, so the re-associated merge
    /// must agree bit for bit.
    #[test]
    fn sharded_vanilla_merge_equals_sequential(
        shards in 1usize..6,
        range in 16usize..128,
        seed in 0u64..500,
        updates in proptest::collection::vec((0u64..512, -8i32..8), 64..400),
    ) {
        let total = 256u64;
        let geometry = SketchGeometry::new(5, range);
        let mut seq = AscsSketch::vanilla(geometry, total, 32, seed);
        let mut sharded = ShardedAscs::vanilla(geometry, total, 32, seed, shards)
            .with_parallel_threshold(1);
        let batch: Vec<ShardUpdate> = updates
            .iter()
            .enumerate()
            .map(|(i, &(key, q))| ShardUpdate {
                key,
                // Dyadic weights: exactly representable, associativity exact.
                value: f64::from(q) * 0.25,
                t: (i as u64 % total) + 1,
            })
            .collect();
        for u in &batch {
            seq.offer(u.key, u.value, u.t);
        }
        sharded.offer_batch(&batch);

        let merged = sharded.merged_sketch();
        let ta = seq.sketch().table();
        let tb = merged.table();
        prop_assert!(
            ta.iter().zip(tb).all(|(a, b)| a == b),
            "merged table diverged from sequential"
        );
        for key in 0..512u64 {
            prop_assert_eq!(seq.estimate(key), sharded.estimate(key));
        }
        prop_assert_eq!(seq.inserted_updates(), sharded.inserted_updates());
    }
}

/// Gated sharded ingestion decides and estimates exactly like sequential
/// gated ingestion when no two live keys collide in any sketch row: each
/// worker then sees precisely the table state the sequential sketch has at
/// that key's buckets.
#[test]
fn sharded_gated_matches_sequential_on_collision_free_keys() {
    let geometry = SketchGeometry::new(5, 16384);
    let total = 128u64;
    let hp = hyper(16, 0.3, 1e-3);
    let probe = AscsSketch::new(geometry, &hp, total, 32, 9);

    // Greedily select keys whose buckets are pairwise disjoint in every row.
    let mut used: Vec<HashSet<usize>> = vec![HashSet::new(); 5];
    let mut keys: Vec<u64> = Vec::new();
    for candidate in 0..50_000u64 {
        let locs = probe.sketch().locate(candidate);
        let free = (0..locs.len()).all(|row| !used[row].contains(&locs.bucket(row)));
        if free {
            for (row, slot) in used.iter_mut().enumerate() {
                slot.insert(locs.bucket(row));
            }
            keys.push(candidate);
            if keys.len() == 24 {
                break;
            }
        }
    }
    assert_eq!(keys.len(), 24, "could not find a collision-free key set");

    let mut seq = AscsSketch::new(geometry, &hp, total, 32, 9);
    let mut sharded = ShardedAscs::new(geometry, &hp, total, 32, 9, 3).with_parallel_threshold(1);
    let mut batch = Vec::new();
    for t in 1..=total {
        for (i, &key) in keys.iter().enumerate() {
            // A mix of strong always-on keys and weak occasional ones, so
            // the gate both accepts and rejects.
            let x = if i % 3 == 0 {
                1.0
            } else if (t + i as u64).is_multiple_of(5) {
                0.05
            } else {
                continue;
            };
            seq.offer(key, x, t);
            batch.push(ShardUpdate { key, value: x, t });
        }
    }
    sharded.offer_batch(&batch);

    for &key in &keys {
        assert_eq!(
            seq.estimate(key),
            sharded.estimate(key),
            "estimate diverged for key {key}"
        );
    }
    assert_eq!(seq.inserted_updates(), sharded.inserted_updates());
    assert_eq!(seq.skipped_updates(), sharded.skipped_updates());
    assert!(seq.skipped_updates() > 0, "gate never rejected anything");

    // The sharded top pairs must agree with the sequential ones on both
    // membership and (merged) estimates for the strong keys.
    let seq_top: Vec<(u64, f64)> = seq.top_pairs();
    let sharded_top: Vec<(u64, f64)> = sharded.top_pairs();
    let strong: HashSet<u64> = keys.iter().copied().step_by(3).collect();
    for top in [&seq_top, &sharded_top] {
        for &(key, _) in top.iter().take(strong.len()) {
            assert!(strong.contains(&key), "non-signal key {key} in the top set");
        }
    }

    // The planned sharded batch path (tracker enabled) reproduces the
    // hashed sharded run exactly, estimates and report alike.
    let mut sharded_planned =
        ShardedAscs::new(geometry, &hp, total, 32, 9, 3).with_parallel_threshold(1);
    let max_key = *keys.iter().max().unwrap();
    let plan = sharded_planned.workers()[0]
        .sketch()
        .build_plan(max_key as usize + 1);
    sharded_planned.offer_batch_planned(&plan, &batch);
    for &key in &keys {
        assert_eq!(
            sharded.estimate(key),
            sharded_planned.estimate(key),
            "planned sharded estimate diverged for key {key}"
        );
    }
    assert_eq!(
        sharded.inserted_updates(),
        sharded_planned.inserted_updates()
    );
    assert_eq!(sharded.skipped_updates(), sharded_planned.skipped_updates());
    assert_eq!(sharded_top, sharded_planned.top_pairs());
}

/// **Checkpoint merge, gated backend.** Two processes sketch disjoint *key*
/// halves under a constant threshold (θ = 0) on a collision-free key set:
/// each key's gate then depends only on its own updates, so per-process
/// decisions match the sequential gate exactly, and merged buckets receive
/// `x + 0.0`, which is bit-exact. Tables, estimates, counters *and* the
/// re-scored tracker must all match sequential ingestion.
#[test]
fn checkpoint_merge_of_key_split_gated_equals_sequential() {
    let geometry = SketchGeometry::new(5, 16384);
    let total = 128u64;
    // θ = 0 makes the linear ramp a constant τ — the schedule round-trips
    // through the codec and gates identically in both processes. τ sits
    // between what the weak keys accumulate in exploration (~1.2e-3) and a
    // single strong weight (1/128), so the gate both accepts and rejects.
    let hp = hyper(16, 0.0, 5e-3);
    let probe = AscsSketch::new(geometry, &hp, total, 32, 9);

    // Greedily select keys whose buckets are pairwise disjoint in every row.
    let mut used: Vec<HashSet<usize>> = vec![HashSet::new(); 5];
    let mut keys: Vec<u64> = Vec::new();
    for candidate in 0..50_000u64 {
        let locs = probe.sketch().locate(candidate);
        let free = (0..locs.len()).all(|row| !used[row].contains(&locs.bucket(row)));
        if free {
            for (row, slot) in used.iter_mut().enumerate() {
                slot.insert(locs.bucket(row));
            }
            keys.push(candidate);
            if keys.len() == 24 {
                break;
            }
        }
    }
    assert_eq!(keys.len(), 24, "could not find a collision-free key set");

    let mut seq = AscsSketch::new(geometry, &hp, total, 32, 9);
    let mut first = AscsSketch::new(geometry, &hp, total, 32, 9);
    let mut second = AscsSketch::new(geometry, &hp, total, 32, 9);
    for t in 1..=total {
        for (i, &key) in keys.iter().enumerate() {
            // Strong always-on keys and weak occasional ones, so the gate
            // both accepts and rejects in the sampling phase.
            let x = if i % 3 == 0 {
                1.0
            } else if (t + i as u64).is_multiple_of(5) {
                0.05
            } else {
                continue;
            };
            seq.offer(key, x, t);
            if i < keys.len() / 2 {
                first.offer(key, x, t);
            } else {
                second.offer(key, x, t);
            }
        }
    }
    assert!(seq.skipped_updates() > 0, "gate never rejected anything");

    let mut bytes_a = Vec::new();
    let mut bytes_b = Vec::new();
    first.save(&mut bytes_a).unwrap();
    second.save(&mut bytes_b).unwrap();
    let mut merged = AscsSketch::restore(&mut bytes_a.as_slice()).unwrap();
    merged
        .merge_from_checkpoint(&mut bytes_b.as_slice())
        .unwrap();

    let ta = seq.sketch().table();
    let tb = merged.sketch().table();
    assert!(
        ta.iter().zip(tb).all(|(a, b)| a.to_bits() == b.to_bits()),
        "merged gated table diverged from sequential ingestion"
    );
    for &key in &keys {
        assert_eq!(seq.estimate(key).to_bits(), merged.estimate(key).to_bits());
    }
    assert_eq!(seq.inserted_updates(), merged.inserted_updates());
    assert_eq!(seq.skipped_updates(), merged.skipped_updates());
    // Collision-free keys: each sequential tracker entry holds the key's
    // final estimate, which is exactly what the merge re-scores against the
    // merged sketch — so the reports agree as key→value maps.
    let mut seq_top = seq.top_pairs();
    let mut merged_top = merged.top_pairs();
    seq_top.sort_unstable_by_key(|&(key, _)| key);
    merged_top.sort_unstable_by_key(|&(key, _)| key);
    assert_eq!(seq_top, merged_top);
}

/// **Checkpoint merge, planned backend.** Two plan-driven vanilla-CS
/// estimators ingest disjoint stream halves (dyadic samples, product
/// updates), checkpoint, and merge; the result must carry exactly the
/// estimates of one uninterrupted planned estimator.
#[test]
fn checkpoint_merge_of_planned_estimators_equals_sequential() {
    let dim = 24u64;
    let total = 64u64;
    let samples: Vec<Sample> = (1..=total)
        .map(|t| {
            let values: Vec<f64> = (0..dim)
                .map(|f| ((t * 31 + f * 7) % 5) as f64 * 0.5 - 1.0)
                .collect();
            Sample::dense(values)
        })
        .collect();
    let config = AscsConfig {
        dim,
        total_samples: total,
        geometry: SketchGeometry::new(5, 2048),
        alpha: 0.05,
        signal_strength: 0.5,
        sigma: 1.0,
        delta: 0.05,
        delta_star: 0.20,
        tau0: 1e-3,
        estimand: EstimandKind::Covariance,
        update_mode: UpdateMode::Product,
        seed: 77,
        top_k_capacity: 32,
    };
    let build = || {
        CovarianceEstimator::new(config, SketchBackend::VanillaCs)
            .unwrap()
            .with_ingestion_plan()
            .unwrap()
    };
    let mut seq = build();
    let mut first = build();
    let mut second = build();
    let half = samples.len() / 2;
    for s in &samples {
        seq.process_sample(s);
    }
    for s in &samples[..half] {
        first.process_sample(s);
    }
    for s in &samples[half..] {
        second.process_sample(s);
    }
    let mut bytes_a = Vec::new();
    let mut bytes_b = Vec::new();
    first.checkpoint(&mut bytes_a).unwrap();
    second.checkpoint(&mut bytes_b).unwrap();
    let mut merged = CovarianceEstimator::resume(&mut bytes_a.as_slice()).unwrap();
    merged
        .merge_from_checkpoint(&mut bytes_b.as_slice())
        .unwrap();

    assert_eq!(merged.processed_samples(), seq.processed_samples());
    assert_eq!(merged.update_counts(), seq.update_counts());
    let (a, b) = (seq.all_estimates(), merged.all_estimates());
    assert!(
        a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()),
        "merged planned estimates diverged from sequential ingestion"
    );
}

/// **Checkpoint merge, sharded backend.** Two sharded estimators in
/// always-insert mode (τ ≡ 0, so the gate is key-order independent) ingest
/// disjoint stream halves and merge worker-by-worker; estimates must match
/// one uninterrupted sharded run bit for bit.
#[test]
fn checkpoint_merge_of_sharded_estimators_equals_sequential() {
    let dim = 24u64;
    let total = 64u64;
    let samples: Vec<Sample> = (1..=total)
        .map(|t| {
            let values: Vec<f64> = (0..dim)
                .map(|f| ((t * 13 + f * 11) % 5) as f64 * 0.5 - 1.0)
                .collect();
            Sample::dense(values)
        })
        .collect();
    let config = AscsConfig {
        dim,
        total_samples: total,
        geometry: SketchGeometry::new(5, 1024),
        alpha: 0.05,
        signal_strength: 0.5,
        sigma: 1.0,
        delta: 0.05,
        delta_star: 0.20,
        tau0: 0.0,
        estimand: EstimandKind::Covariance,
        update_mode: UpdateMode::Product,
        seed: 31,
        top_k_capacity: 32,
    };
    // τ0 = 0 and θ = 0: the schedule is identically zero, every update is
    // inserted, so disjoint halves commute exactly (dyadic weights).
    let hp = hyper(1, 0.0, 0.0);
    let backend = SketchBackend::ShardedAscs { shards: 3 };
    let build = || CovarianceEstimator::with_hyperparameters(config, backend, Some(hp));
    let mut seq = build();
    let mut first = build();
    let mut second = build();
    let half = samples.len() / 2;
    for s in &samples {
        seq.process_sample(s);
    }
    for s in &samples[..half] {
        first.process_sample(s);
    }
    for s in &samples[half..] {
        second.process_sample(s);
    }
    let mut bytes_a = Vec::new();
    let mut bytes_b = Vec::new();
    first.checkpoint(&mut bytes_a).unwrap();
    second.checkpoint(&mut bytes_b).unwrap();
    let mut merged = CovarianceEstimator::resume(&mut bytes_a.as_slice()).unwrap();
    merged
        .merge_from_checkpoint(&mut bytes_b.as_slice())
        .unwrap();

    assert_eq!(merged.processed_samples(), seq.processed_samples());
    assert_eq!(merged.update_counts(), seq.update_counts());
    let (a, b) = (seq.all_estimates(), merged.all_estimates());
    assert!(
        a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()),
        "merged sharded estimates diverged from sequential ingestion"
    );
}

/// The fused path must also agree with the naive oracle through the
/// estimator stack (hoisted per-sample gate) — a cheap end-to-end pin.
#[test]
fn estimator_hoisted_gate_matches_direct_offers() {
    let dim = 16u64;
    let total = 64u64;
    let geometry = SketchGeometry::new(5, 2048);
    let hp = hyper(8, 0.25, 1e-3);

    let config = AscsConfig {
        dim,
        total_samples: total,
        geometry,
        alpha: 0.05,
        signal_strength: 0.5,
        sigma: 1.0,
        delta: 0.05,
        delta_star: 0.20,
        tau0: 1e-3,
        estimand: EstimandKind::Covariance,
        update_mode: UpdateMode::Product,
        seed: 77,
        top_k_capacity: 32,
    };
    let mut estimator =
        CovarianceEstimator::with_hyperparameters(config, SketchBackend::Ascs, Some(hp));
    let mut direct = AscsSketch::new(geometry, &hp, total, 32, 77);

    // Mirror the estimator's sample expansion with direct offers.
    let mut ctx = ascs_core::StreamContext::new(dim, UpdateMode::Product, EstimandKind::Covariance);
    for t in 1..=total {
        let values: Vec<f64> = (0..dim)
            .map(|f| ((t * 31 + f * 7) % 5) as f64 * 0.5 - 1.0)
            .collect();
        let sample = Sample::dense(values);
        ctx.ingest(&sample, |u| {
            direct.offer(u.key, u.value, t);
        });
        estimator.process_sample(&sample);
    }
    for key in 0..ascs_core::num_pairs(dim) {
        assert_eq!(estimator.estimate_key(key), direct.estimate(key));
    }
    let (ins, skip) = estimator.update_counts();
    assert_eq!(
        (ins, skip),
        (direct.inserted_updates(), direct.skipped_updates())
    );
}
