//! Property-based tests (proptest) over the core invariants of the
//! workspace: pair indexing, sketch estimation, threshold schedules,
//! hyperparameter solving, running statistics and the evaluation metrics.

use ascs::prelude::*;
use ascs_core::{num_pairs, pair_from_index, pair_to_index};
use ascs_numerics::{normal_cdf, normal_quantile, RunningMoments};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The pair codec is a bijection for any dimensionality and index.
    #[test]
    fn pair_codec_round_trips(d in 2u64..5000, salt in 0u64..u64::MAX) {
        let p = num_pairs(d);
        prop_assume!(p > 0);
        let index = salt % p;
        let (a, b) = pair_from_index(index, d);
        prop_assert!(a < b && b < d);
        prop_assert_eq!(pair_to_index(a, b, d), index);
    }

    /// Encoding any valid ordered pair stays within the universe bounds.
    #[test]
    fn pair_encoding_is_in_range(d in 2u64..2000, x in 0u64..u64::MAX, y in 0u64..u64::MAX) {
        let a = x % d;
        let b = y % d;
        prop_assume!(a != b);
        let indexer = PairIndexer::new(d);
        let key = indexer.index(a, b);
        prop_assert!(key < indexer.num_pairs());
    }

    /// A count sketch with plenty of room recovers accumulated weights
    /// exactly, regardless of the update order and weight signs.
    #[test]
    fn count_sketch_is_exact_without_collisions(
        updates in proptest::collection::vec((0u64..20, -5.0f64..5.0), 1..60),
        seed in 0u64..1000,
    ) {
        let mut cs = CountSketch::new(5, 8192, seed);
        let mut truth = std::collections::HashMap::new();
        for &(key, w) in &updates {
            cs.update(key, w);
            *truth.entry(key).or_insert(0.0) += w;
        }
        for (key, want) in truth {
            prop_assert!((cs.estimate(key) - want).abs() < 1e-6);
        }
    }

    /// Count-sketch estimates never explode beyond the total inserted mass.
    #[test]
    fn count_sketch_estimates_are_bounded_by_total_mass(
        updates in proptest::collection::vec((0u64..500, 0.0f64..1.0), 1..200),
        seed in 0u64..100,
    ) {
        let mut cs = CountSketch::new(3, 64, seed);
        let mut total = 0.0;
        for &(key, w) in &updates {
            cs.update(key, w);
            total += w;
        }
        for key in 0..500u64 {
            prop_assert!(cs.estimate(key).abs() <= total + 1e-9);
        }
    }

    /// The linear threshold schedule is monotone non-decreasing in t and
    /// bounded by tau0 + theta.
    #[test]
    fn linear_schedule_is_monotone_and_bounded(
        tau0 in 0.0f64..0.5,
        theta in 0.0f64..2.0,
        t0 in 1u64..500,
        extra in 1u64..2000,
    ) {
        let total = t0 + extra;
        let s = ThresholdSchedule::linear(tau0, theta, t0, total);
        let mut prev = f64::NEG_INFINITY;
        let step = (extra / 50).max(1);
        let mut t = 0;
        while t <= total {
            let tau = s.tau(t);
            prop_assert!(tau >= prev - 1e-15);
            prop_assert!(tau <= tau0 + theta + 1e-12);
            prev = tau;
            t += step;
        }
    }

    /// Theorem 1's bound is a probability, decreasing in T0, and never below
    /// the saturation probability.
    #[test]
    fn theorem1_bound_behaves_like_a_probability(
        dim in 50u64..400,
        range_div in 5usize..50,
        alpha in 0.001f64..0.1,
        u in 0.1f64..1.0,
    ) {
        let p = num_pairs(dim);
        let r = ((p as usize) / range_div).max(2);
        let bounds = TheoryBounds::new(p, r, 5, alpha, 1.0, u, 2000);
        let sp = bounds.saturation_probability();
        let mut prev = f64::INFINITY;
        for t0 in [10u64, 50, 200, 1000, 2000] {
            let b = bounds.theorem1_miss_bound(t0, 1e-4);
            prop_assert!((0.0..=1.0).contains(&b));
            prop_assert!(b <= prev + 1e-12, "bound must not increase with T0");
            prop_assert!(b >= sp - 1e-12);
            prev = b;
        }
    }

    /// Whenever Algorithm 3 succeeds, its outputs satisfy the bounds they
    /// were solved against.
    #[test]
    fn solver_outputs_respect_their_bounds(
        dim in 100u64..600,
        range_div in 10usize..40,
        alpha in 0.002f64..0.05,
        u in 0.2f64..1.0,
    ) {
        let p = num_pairs(dim);
        let r = ((p as usize) / range_div).max(2);
        let bounds = TheoryBounds::new(p, r, 5, alpha, 1.0, u, 3000);
        let solver = HyperParameterSolver::new(bounds);
        let delta = solver.default_delta();
        let delta_star = solver.default_delta_star(delta);
        if let Ok(hp) = solver.solve(1e-4, delta, delta_star) {
            prop_assert!(hp.t0 >= 1 && hp.t0 <= 3000);
            prop_assert!(hp.theta >= 0.0 && hp.theta < u);
            prop_assert!(bounds.theorem1_miss_bound(hp.t0, hp.tau0) <= delta + 1e-9);
            prop_assert!(
                bounds.theorem2_omission_bound(hp.theta, hp.tau0, hp.t0)
                    <= (delta_star - delta) + 1e-9
            );
        }
    }

    /// Welford running moments agree with the two-pass computation for any
    /// input sequence.
    #[test]
    fn welford_matches_two_pass(values in proptest::collection::vec(-100.0f64..100.0, 1..300)) {
        let mut m = RunningMoments::new();
        for &v in &values {
            m.push(v);
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        prop_assert!((m.mean() - mean).abs() < 1e-8);
        prop_assert!((m.population_variance() - var).abs() < 1e-6);
    }

    /// The normal quantile inverts the normal CDF across the unit interval.
    #[test]
    fn normal_quantile_inverts_cdf(p in 0.0001f64..0.9999) {
        let x = normal_quantile(p);
        prop_assert!((normal_cdf(x) - p).abs() < 1e-9);
    }

    /// Max-F1 is 1 exactly when some prefix of the ranking equals the signal
    /// set; it is bounded by 1 otherwise and monotone under prepending a
    /// signal key.
    #[test]
    fn max_f1_is_bounded_and_improves_with_a_leading_hit(
        ranked in proptest::collection::vec(0u64..1000, 1..50),
        signals in proptest::collection::hash_set(0u64..1000, 1..20),
    ) {
        let signal_set: HashSet<u64> = signals.clone();
        let base = max_f1_score(&ranked, &signal_set);
        prop_assert!((0.0..=1.0).contains(&base));
        // Prepend a guaranteed signal hit not already leading the ranking.
        let hit = *signal_set.iter().next().unwrap();
        let mut boosted = vec![hit];
        boosted.extend(ranked.iter().copied().filter(|&k| k != hit));
        let better = max_f1_score(&boosted, &signal_set);
        prop_assert!(better + 1e-12 >= base);
    }

    /// TopKTracker never exceeds its capacity, and when the capacity covers
    /// every distinct key it tracks each key's latest offered value exactly.
    #[test]
    fn topk_tracker_respects_capacity_and_latest_values(
        offers in proptest::collection::vec((0u64..40, 0.0f64..100.0), 1..200),
        capacity in 1usize..50,
    ) {
        let mut tracker = TopKTracker::new(capacity);
        let mut latest: std::collections::HashMap<u64, f64> = Default::default();
        for &(k, v) in &offers {
            tracker.offer(k, v);
            latest.insert(k, v);
        }
        prop_assert!(tracker.len() <= capacity);
        prop_assert!(tracker.len() <= latest.len());
        if capacity >= latest.len() {
            // No eviction can have happened: every key is present with its
            // latest value.
            prop_assert_eq!(tracker.len(), latest.len());
            for (k, v) in &latest {
                prop_assert_eq!(tracker.get(*k), Some(*v));
            }
        }
        // Whatever is retained must carry a value some offer actually made.
        for (k, v) in tracker.descending() {
            prop_assert!(offers.iter().any(|&(ok, ov)| ok == k && (ov - v).abs() < 1e-12));
        }
    }
}
