//! Numeric contracts of the time-aware sketches.
//!
//! * The decayed sketch's **global decay accumulator** stays finite and
//!   accurate over streams long enough to force many generation
//!   rotations: the estimate tracks a directly-maintained EWMA recurrence
//!   to fine relative tolerance, at `γ` both close to and far from 1.
//! * **Scale-on-read is pure**: the sketch exposes a table-write
//!   counter, and a heavy barrage of point queries, whole-universe
//!   merges, and normaliser reads must leave it — and every table bit —
//!   untouched. The decayed table is never rescaled in place.
//! * **Pinned-sequence determinism**: for a fixed update sequence the
//!   final state is bit-identical no matter how reads interleave with
//!   ingestion, and repeated reads at a fixed `t` are bit-stable.

use ascs::prelude::*;

/// Deterministic dyadic-ish weight stream (values in ±2, varied).
fn pinned_weight(i: u64) -> f64 {
    ((i * 7 + 3) % 9) as f64 * 0.5 - 2.0
}

/// The decayed accumulator survives ~100k samples — dozens of scale
/// rotations at γ = 0.99 — with every observable finite and the estimate
/// matching the EWMA recurrence `raw_t = γ·raw_{t−1} + u_t` to fine
/// relative tolerance. Collisions are excluded by a tiny universe in a
/// huge range, so the sketch read *is* the decayed sum.
#[test]
fn decay_accumulator_is_finite_and_accurate_over_long_streams() {
    // γ = 0.999 never reaches the growth limit in 60k samples — it pins
    // the single-generation regime; the other two force many rotations.
    for &(gamma, total, expect_rotations) in &[
        (0.99f64, 100_000u64, true),
        (0.5, 20_000, true),
        (0.999, 60_000, false),
    ] {
        let mut sketch = DecayedSketch::new(3, 1 << 14, 42, gamma);
        let mut ewma = [0.0f64; 3];
        for t in 1..=total {
            sketch.begin_sample();
            for (key, e) in ewma.iter_mut().enumerate() {
                let u = pinned_weight(t * 3 + key as u64);
                sketch.ingest(key as u64, u);
                *e = gamma * *e + u;
            }
        }
        assert_eq!(
            sketch.rotations() > 0,
            expect_rotations,
            "γ = {gamma}: unexpected rotation count {}",
            sketch.rotations()
        );
        assert!(
            sketch.generation_count() <= 4,
            "γ = {gamma}: {} live generations",
            sketch.generation_count()
        );
        let norm = sketch.weight_norm();
        assert!(norm.is_finite() && norm > 0.0);
        assert!(sketch.effective_sample_size().is_finite());
        for (key, e) in ewma.iter().enumerate() {
            let raw = sketch.raw_estimate(key as u64);
            assert!(raw.is_finite(), "γ = {gamma}: non-finite raw estimate");
            assert!(
                (raw - e).abs() <= 1e-9 * (1.0 + e.abs()),
                "γ = {gamma}, key {key}: raw {raw} vs recurrence {e}"
            );
            // The normalised estimate is exactly raw / W — a single
            // division, bit-reproducible.
            let est = sketch.estimate(key as u64);
            assert_eq!(
                est.to_bits(),
                (raw / norm).to_bits(),
                "γ = {gamma}, key {key}: estimate diverged from raw/W"
            );
        }
    }
}

/// The write-op probe: reads of every flavour — point queries, raw
/// queries, whole-universe merges, normalisers — never touch the tables.
/// `table_write_ops` counts `rows` per ingested update and nothing else,
/// and the merged table is bit-stable across read barrages.
#[test]
fn decayed_reads_never_rescale_the_table_in_place() {
    let rows = 4usize;
    let mut sketch = DecayedSketch::new(rows, 512, 7, 0.97);
    let mut ingested = 0u64;
    for t in 1..=3_000u64 {
        sketch.begin_sample();
        for key in 0..8u64 {
            sketch.ingest(key, pinned_weight(t * 8 + key));
            ingested += 1;
        }
    }
    let writes_after_ingest = sketch.table_write_ops();
    assert_eq!(
        writes_after_ingest,
        ingested * rows as u64,
        "write-op ledger out of step with ingestion"
    );

    let before_table = sketch.merged_sketch();
    let before_estimates: Vec<u64> = (0..64u64).map(|k| sketch.estimate(k).to_bits()).collect();
    // A heavy interleaved read barrage.
    for round in 0..50 {
        for key in 0..64u64 {
            let _ = sketch.estimate(key);
            let _ = sketch.raw_estimate(key);
        }
        let _ = sketch.weight_norm();
        let _ = sketch.effective_sample_size();
        if round % 5 == 0 {
            let _ = sketch.merged_sketch();
        }
    }
    assert_eq!(
        sketch.table_write_ops(),
        writes_after_ingest,
        "a read path wrote to the tables"
    );
    let after_table = sketch.merged_sketch();
    assert!(
        before_table
            .table()
            .iter()
            .zip(after_table.table())
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "reads changed the merged table"
    );
    let after_estimates: Vec<u64> = (0..64u64).map(|k| sketch.estimate(k).to_bits()).collect();
    assert_eq!(
        before_estimates, after_estimates,
        "repeated reads at a fixed t are not bit-stable"
    );
}

/// Bit-stable under any read/ingest interleaving: two sketches fed the
/// same pinned sequence — one read-hammered after every sample, one never
/// read until the end — finish with bit-identical generation tables and
/// estimates. The same holds for the windowed ring.
#[test]
fn pinned_sequence_is_deterministic_under_interleaved_reads() {
    let total = 2_000u64;
    let mut quiet = DecayedSketch::new(3, 256, 11, 0.98);
    let mut hammered = DecayedSketch::new(3, 256, 11, 0.98);
    let mut win_quiet = WindowedSketch::new(3, 256, 11, 32, 4);
    let mut win_hammered = WindowedSketch::new(3, 256, 11, 32, 4);
    for t in 1..=total {
        quiet.begin_sample();
        hammered.begin_sample();
        let _ = win_quiet.begin_sample();
        let _ = win_hammered.begin_sample();
        for key in 0..12u64 {
            let u = pinned_weight(t * 12 + key);
            quiet.ingest(key, u);
            hammered.ingest(key, u);
            // Reads *between* the ingests of one sample.
            let _ = hammered.estimate(key);
            let _ = hammered.raw_estimate((key + 5) % 12);
            win_quiet.ingest(key, u);
            win_hammered.ingest(key, u);
            let _ = win_hammered.estimate(key);
        }
        if t % 37 == 0 {
            let _ = hammered.merged_sketch();
            let _ = hammered.weight_norm();
            let _ = win_hammered.merged_sketch();
        }
    }
    assert_eq!(quiet.generation_count(), hammered.generation_count());
    assert_eq!(quiet.table_write_ops(), hammered.table_write_ops());
    let (a, b) = (quiet.merged_sketch(), hammered.merged_sketch());
    assert!(
        a.table()
            .iter()
            .zip(b.table())
            .all(|(x, y)| x.to_bits() == y.to_bits()),
        "interleaved reads perturbed the decayed tables"
    );
    for key in 0..64u64 {
        assert_eq!(
            quiet.estimate(key).to_bits(),
            hammered.estimate(key).to_bits(),
            "decayed estimate diverged at key {key}"
        );
        assert_eq!(
            win_quiet.estimate(key).to_bits(),
            win_hammered.estimate(key).to_bits(),
            "windowed estimate diverged at key {key}"
        );
    }
}

/// The decayed estimator backend inherits the purity contract end to end:
/// `all_estimates` sweeps between samples do not disturb subsequent
/// ingestion (bit-compared against an undisturbed twin), for both
/// time-aware backends.
#[test]
fn estimator_sweeps_between_samples_do_not_disturb_time_aware_backends() {
    let dim = 16u64;
    let total = 256u64;
    let config = AscsConfig {
        dim,
        total_samples: total,
        geometry: SketchGeometry::new(5, 1024),
        alpha: 0.05,
        signal_strength: 0.5,
        sigma: 1.0,
        delta: 0.05,
        delta_star: 0.20,
        tau0: 1e-3,
        estimand: EstimandKind::Covariance,
        update_mode: UpdateMode::Product,
        seed: 23,
        top_k_capacity: 32,
    };
    for backend in [
        SketchBackend::Windowed {
            segment_len: 32,
            segments: 4,
        },
        SketchBackend::Decayed { gamma: 0.97 },
    ] {
        let mut quiet = CovarianceEstimator::with_hyperparameters(config, backend, None);
        let mut swept = CovarianceEstimator::with_hyperparameters(config, backend, None);
        for t in 1..=total {
            let values: Vec<f64> = (0..dim)
                .map(|f| ((t * 31 + f * 7) % 5) as f64 * 0.5 - 1.0)
                .collect();
            let sample = Sample::dense(values);
            quiet.process_sample(&sample);
            swept.process_sample(&sample);
            if t % 9 == 0 {
                let _ = swept.all_estimates();
                let _ = swept.top_pairs(8);
            }
        }
        let (a, b) = (quiet.all_estimates(), swept.all_estimates());
        assert!(
            a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()),
            "mid-stream sweeps disturbed the {backend:?} backend"
        );
    }
}
